"""The warm-worker batch executor: persistent daemons, streaming admission,
retry-from-checkpoint, deadlines, circuit breaking and chaos kills.

One :class:`JobPool` drives one batch.  Jobs are admitted through a bounded
queue — directly (:meth:`submit` with a spec raises
:class:`~repro.errors.QueueSaturatedError` instead of growing memory without
limit) or as a *stream* (:meth:`submit` with an iterator of specs, pulled
lazily as capacity frees, with per-tenant quotas and priority lanes) — then
:meth:`run` supervises up to ``workers`` **long-lived warm daemons**
(:class:`~repro.jobs.warm.WarmWorker`).  Each daemon is preforked once and
serves many jobs over a private pipe, so the process-wide kernel caches and
the per-family ``(tile, height)`` step plans stay warm from job to job, and
the read-only model arrays are attached zero-copy from
:class:`~repro.jobs.shm.SharedArrayRegistry` segments published once per
batch.  Results return over the same pipe; the atomic-file protocol remains
for what it is good at — checkpoints and crash forensics.

Every fault domain of the process-per-attempt design is preserved:

* **crash recovery** — a daemon that dies without reporting (kill signal,
  hard crash) surfaces as a :class:`~repro.errors.WorkerCrashError` on its
  in-flight job; the job is retried on another daemon, resuming from the
  newest snapshot its
  :class:`~repro.runtime.checkpoint.FileCheckpointStore` persisted —
  bit-identical to an uninterrupted run.  The dead daemon is retired and a
  replacement preforked while work remains; its shared-memory mappings die
  with the process and the supervisor's ``finally`` unlinks every segment,
  so nothing leaks into ``/dev/shm``.
* **retries** — daemon-reported faults are retried with exponential backoff
  and per-job seeded jitter (:class:`~repro.jobs.retry.RetryPolicy`) up to
  ``max_attempts``; the terminal
  :class:`~repro.errors.RetryExhaustedError` carries the full history.
* **deadlines** — a job over its total wall-clock budget has its daemon
  SIGKILLed and reports :class:`~repro.errors.JobTimeoutError` without
  disturbing the rest of the pool (a result that raced the kill into the
  pipe still counts); late retries are *degraded* to the naive schedule.
* **circuit breaking** — an optional
  :class:`~repro.jobs.breaker.CircuitBreaker` watches daemon-reported fused
  compile failures; once open, jobs dispatch straight at the next ladder
  rung.
* **chaos** — a :class:`~repro.jobs.chaos.ChaosConfig` arms per-job fault
  injection inside daemons and lets the supervisor SIGKILL the daemon of an
  attempt-0 job right after its first checkpoint lands — or SIGKILL the
  *supervisor itself* (``kill_supervisor_after``), the crash :meth:`resume`
  exists to survive.
* **silent data corruption** — a daemon whose ABFT guard (or shared-memory
  checksum gate) raises :class:`~repro.errors.SilentCorruptionError` has
  the attempt classified ``sdc``: the retry backs off flat (corruption is
  environmental, not the job's fault), never counts toward poison
  quarantine, and stops trusting the shared model segments — a corrupted
  ``/dev/shm`` block costs one attempt.  Corruption the guard *recovered
  in-run* (tile re-execution from its entry micro-snapshot) completes
  normally but is still journaled as an ``sdc`` audit record and counted
  (``sdc_detections_total``, ``sdc_tiles_reexecuted_total``).
* **storage exhaustion** — ``ENOSPC`` on the journal or checkpoint path
  degrades the batch (best-effort ``storage_degraded`` record, journaling
  off, clean drain) instead of killing the supervisor mid-flight.

And — new in this revision — the *supervisor* is no longer a single point
of failure:

* **write-ahead journal** — every state transition (admission, attempt
  dispatch, outcome, terminal state, published shared-memory segments) is
  appended to ``journal.jsonl`` in the batch workdir *before* it is
  performed, fsynced, with a per-record SHA-256 trailer
  (:mod:`repro.jobs.journal`).
* **crash-safe resume** — :meth:`JobPool.resume` replays the journal of an
  orphaned batch directory: jobs whose ``result.npz`` is durable and
  digest-verified are preloaded as completed, terminal failures are
  reconstructed, everything else is re-admitted (in-flight attempts resume
  from their newest verified checkpoint snapshot), and the leaked
  ``/dev/shm`` segments of the dead supervisor are unlinked.  The resumed
  batch produces receivers bit-identical to an uninterrupted run.
* **graceful drain** — SIGTERM/SIGINT stop dispatch, let in-flight attempts
  finish, journal the drain and report unfinished jobs as ``interrupted``
  (resumable); a second signal is answered the same way (idempotent).
* **heartbeat liveness** — busy daemons beat every ``heartbeat_interval``
  seconds; a busy daemon silent longer than ``heartbeat_timeout`` is
  wedged (native-call livelock), SIGKILLed, replaced, and its job retried
  from checkpoint.
* **poison-job quarantine** — a spec whose attempts *crash* the daemon
  ``poison_threshold`` times consecutively is quarantined
  (:class:`~repro.errors.PoisonJobError` with forensics) instead of burning
  the replacement budget forever.
* **stream isolation** — a user spec iterator that raises mid-pull becomes
  a :class:`~repro.errors.StreamAdmissionError` on the report; already
  admitted jobs drain to terminal states instead of being abandoned.

``workers=0`` runs the same job/retry/chaos state machine serially in the
current process (no kills, post-hoc deadlines) with its own
:class:`~repro.jobs.warm.WarmState` — the baseline the benchmark compares
pool throughput against.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import signal
import time
from collections import deque
from contextlib import nullcontext
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import (
    JobTimeoutError,
    PoisonJobError,
    QueueSaturatedError,
    RetryExhaustedError,
    SilentCorruptionError,
    StorageExhaustedError,
    StreamAdmissionError,
    WorkerCrashError,
)
from ..runtime.integrity import file_digest, verify_digest, write_digest
from ..telemetry.metrics import MetricsRegistry, PhaseAccountant, write_json_atomic
from .breaker import CircuitBreaker
from .chaos import ChaosConfig, ChaosPlan
from . import journal as _journal_mod
from .journal import JOURNAL_NAME, JOURNAL_VERSION, BatchJournal, load_journal
from .retry import RetryPolicy
from .spec import LANES, AttemptRecord, BatchReport, JobResult, JobSpec
from .warm import WarmState, WarmWorker
from . import worker as worker_mod

__all__ = ["JobPool", "run_batch", "DEFAULT_CAPACITY", "METRICS_NAME", "PROM_NAME"]

DEFAULT_CAPACITY = 256

#: live metrics snapshot, atomically refreshed in the batch workdir on the
#: ``status_interval`` cadence (what ``python -m repro.jobs.status`` reads)
METRICS_NAME = "metrics.json"

#: final Prometheus text exposition, written once at batch end
PROM_NAME = "metrics.prom"


class _Job:
    """Supervisor-side state of one submitted job."""

    def __init__(self, index: int, spec: JobSpec, job_dir: Path, jitter_rng):
        self.index = index
        self.spec = spec
        self.dir = job_dir
        self.jitter_rng = jitter_rng
        #: admission clock reading — the admission-wait histogram's anchor
        self.queued_ts = time.perf_counter()
        self.attempt_no = 0
        self.attempts: List[AttemptRecord] = []
        self.first_started: Optional[float] = None
        self.worker: Optional[WarmWorker] = None
        self.dispatched_engine = ""
        self.result: Optional[JobResult] = None
        self.chaos_killed = False
        #: consecutive daemon-crash outcomes (quarantine trigger; survives
        #: resume via the journal's outcome records)
        self.consecutive_crashes = 0
        #: a journal replay found an attempt in flight at the crash: the
        #: next dispatch must resume from checkpoint even though no failure
        #: outcome was ever journaled
        self.force_resume = False
        #: an attempt ended in silent data corruption: later attempts stop
        #: trusting the shared-memory model segments and recompute locally
        self.distrust_shm = False

    @property
    def terminal(self) -> bool:
        return self.result is not None

    def elapsed(self, now: float) -> float:
        return 0.0 if self.first_started is None else now - self.first_started

    def over_deadline(self, now: float) -> bool:
        return (
            self.spec.deadline is not None
            and self.first_started is not None
            and self.elapsed(now) > self.spec.deadline
        )


class _Stream:
    """One lazily-pulled spec iterator with a single-slot hold buffer (a
    pulled spec whose tenant is at quota parks here; the stream stalls —
    bounded memory — until the quota frees)."""

    def __init__(self, specs: Iterable[JobSpec]):
        self.it = iter(specs)
        self.held: Optional[JobSpec] = None
        self.done = False
        self.admitted = 0  # specs successfully admitted from this stream

    def next_spec(self) -> Optional[JobSpec]:
        if self.held is not None:
            spec, self.held = self.held, None
            return spec
        if self.done:
            return None
        try:
            return next(self.it)
        except StopIteration:
            self.done = True
            return None

    @property
    def exhausted(self) -> bool:
        return self.done and self.held is None


def _degrade(spec: JobSpec) -> JobSpec:
    """Deadline-pressure downgrade: run the rest of the budget on the naive
    schedule — minimal precompute, and per-timestep (not per-tile)
    checkpoint granularity, so any further retry loses the least work.
    Numerics are unchanged: all schedules are bit-identical."""
    from dataclasses import replace

    return spec if spec.schedule == "naive" else replace(spec, schedule="naive")


def _durable_result(job_dir: Path, digest: Optional[str]):
    """The journal-verified durable result of *job_dir*, or None.

    Trusted only when ``result.npz`` exists, matches its ``.sha256``
    sidecar, *and* matches the digest the journal's completion outcome
    recorded — a torn write, on-disk damage, or a file from some other run
    all fail the cross-check and send the job back to execution."""
    path = worker_mod._result_path(job_dir)
    if not path.exists() or not verify_digest(path, require=True):
        return None
    if digest is not None and file_digest(path) != digest:
        return None
    try:
        return worker_mod.read_result(job_dir)
    except Exception:
        return None


def _classify_failure(error: BaseException) -> str:
    """Attempt-outcome label of a daemon-reported failure.

    ``"sdc"`` (a :class:`~repro.errors.SilentCorruptionError` the worker's
    ABFT guard or shm checksum gate raised) is kept distinct from the
    generic ``"fault"``: sdc retries back off flat (corruption is
    environmental, not the job's fault), never count toward poison
    quarantine, and make later attempts distrust the shared-memory model
    segments."""
    return "sdc" if isinstance(error, SilentCorruptionError) else "fault"


def _resume_step(job_dir: Path) -> Optional[int]:
    """Newest persisted snapshot step, parsed from the filename (the store's
    atomic writes mean a visible file is a complete file)."""
    paths = sorted(Path(job_dir).glob("ckpt/ckpt_*.npz"))
    return int(paths[-1].stem[len("ckpt_"):]) if paths else None


class JobPool:
    """Warm-worker batch executor (see module docstring).

    Parameters
    ----------
    workers:
        Warm daemon slots; ``0`` executes serially in-process.
    capacity:
        Bound on admitted-but-unfinished jobs; a direct :meth:`submit`
        raises :class:`~repro.errors.QueueSaturatedError` beyond it, and
        streams stop being pulled until jobs finish.
    retry:
        Backoff policy (default :class:`~repro.jobs.retry.RetryPolicy`).
    breaker:
        Optional :class:`~repro.jobs.breaker.CircuitBreaker` guarding the
        fused engine across the batch.
    chaos:
        Optional :class:`~repro.jobs.chaos.ChaosConfig`; resolved per job
        from *batch_seed* (scheduling-order independent).
    batch_seed:
        Master seed of every derived substream (faults, jitter, chaos).
    workdir:
        Directory for per-job checkpoint/forensics files; a temporary
        directory (cleaned up after :meth:`run`) when omitted.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` buffer; job lifecycle
        events land in it as ``job.*`` marks, plus per-worker warm/cold
        attempt counters and aggregated kernel/step-cache tallies.
    pressure_fraction:
        Fraction of the deadline a job may burn before retries dispatch
        degraded.
    tenant_quota:
        Optional per-tenant bound on admitted-but-unfinished jobs: a direct
        :meth:`submit` over it raises
        :class:`~repro.errors.QueueSaturatedError`, a stream holding a spec
        of a saturated tenant stalls until the tenant drains.
    journal:
        Write-ahead journal every state transition to
        ``<workdir>/journal.jsonl`` (default on; a pre-existing journal from
        an earlier batch in the same workdir is truncated — use
        :meth:`resume` to continue one instead).
    journal_fsync:
        fsync each journal record (default on — the crash-safety contract;
        turn off only for throughput experiments).
    heartbeat_interval:
        Seconds between liveness beats of a busy daemon.
    heartbeat_timeout:
        A busy daemon silent this long is declared wedged: SIGKILLed,
        replaced, its job retried from checkpoint.  ``None`` disables the
        check.
    poison_threshold:
        Consecutive daemon-crash outcomes before a job is quarantined.
    metrics:
        Service-level instrumentation: ``None`` (default) creates a private
        :class:`~repro.telemetry.metrics.MetricsRegistry`; pass a registry
        to share one across pools; pass ``False`` to disable the metrics
        layer *and* supervisor phase accounting entirely (the overhead
        benchmark's off-path).
    trace:
        Propagate a trace context to every attempt and collect serialized
        span trees back with results (``AttemptRecord.trace``), mergeable
        into one batch-wide Chrome trace by
        :func:`repro.telemetry.merge.merge_batch_trace`.  Implies a
        telemetry buffer (one is created when none was passed).
    status_interval:
        Cadence (seconds) of the atomically-refreshed ``metrics.json``
        live-status snapshot in the batch workdir; ``0`` disables the
        cadence (the final snapshot is still written).
    """

    def __init__(
        self,
        workers: int = 4,
        capacity: int = DEFAULT_CAPACITY,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        chaos: Optional[ChaosConfig] = None,
        batch_seed: int = 0,
        workdir=None,
        telemetry=None,
        poll_interval: float = 0.02,
        pressure_fraction: float = 0.5,
        start_method: Optional[str] = None,
        tenant_quota: Optional[int] = None,
        journal: bool = True,
        journal_fsync: bool = True,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: Optional[float] = 60.0,
        poison_threshold: int = 3,
        metrics=None,
        trace: bool = False,
        status_interval: float = 0.5,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = serial in-process)")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1 (or None)")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive (or None)")
        if poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        # static schema self-check: the journal kinds this module emits must
        # match the declared table and the resume dispatch (cached per process)
        if not _journal_mod._schema_checked:
            _journal_mod.verify_journal_schema()
        self.workers = int(workers)
        self.capacity = int(capacity)
        self.tenant_quota = tenant_quota
        self.retry = retry or RetryPolicy()
        self.breaker = breaker
        self.chaos_plan = (
            ChaosPlan(chaos, batch_seed) if chaos is not None and chaos.active else None
        )
        self.batch_seed = int(batch_seed)
        self.telemetry = telemetry
        self.trace = bool(trace)
        if self.trace and self.telemetry is None:
            from ..telemetry import Telemetry

            self.telemetry = Telemetry()
        self.poll_interval = float(poll_interval)
        self.pressure_fraction = float(pressure_fraction)
        self._tmp = None
        if workdir is None:
            import tempfile

            self._tmp = tempfile.TemporaryDirectory(prefix="repro-jobs-")
            workdir = self._tmp.name
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._jobs: List[_Job] = []
        self._by_id: Dict[str, _Job] = {}
        self._ready: list = []  # heap of (lane_priority, tiebreak, job)
        self._delayed: list = []  # heap of (ready_time, tiebreak, job)
        self._streams: deque = deque()
        self._tenant_active: Dict[str, int] = {}
        self._seq = 0
        # warm-daemon pool state
        self._pool: List[WarmWorker] = []
        self._worker_seq = 0
        self.workers_spawned = 0
        self._registry = None  # SharedArrayRegistry, created in run()
        self._handles: Dict[str, object] = {}
        self._kills_remaining = (
            self.chaos_plan.config.kill_workers if self.chaos_plan else 0
        )
        self.kills_done = 0
        #: chronological lifecycle events: {"ts", "kind", "job", ...}
        self.events: List[dict] = []
        self._epoch = time.perf_counter()
        # supervisor robustness state
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = (
            None if heartbeat_timeout is None else float(heartbeat_timeout)
        )
        self.poison_threshold = int(poison_threshold)
        self.hung_workers = 0
        self.resumed = False
        self._stream_errors: List[str] = []
        self._draining = False
        self._drain_signal: Optional[int] = None
        self._terminals = 0
        #: the StorageExhaustedError that degraded this batch (None = healthy)
        self.storage_degraded: Optional[StorageExhaustedError] = None
        # -- observability layer: registry + exclusive phase accounting ----
        # (metrics=False turns the whole layer off — the overhead
        # benchmark's baseline path)
        if metrics is False:
            self.metrics: Optional[MetricsRegistry] = None
            self._acct: Optional[PhaseAccountant] = None
        else:
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            self._acct = PhaseAccountant()
        self.status_interval = float(status_interval)
        self._last_status = 0.0
        self._jobs_phase_added = 0.0
        self._init_metrics()
        if self.breaker is not None and self.metrics is not None:
            self.breaker.bind_metrics(self.metrics)
        self._journal: Optional[BatchJournal] = None
        if journal:
            # a fresh pool owns its journal outright: truncate whatever an
            # earlier batch left in this workdir (resume() reattaches
            # instead, past the verified prefix)
            self._journal = BatchJournal(
                self.workdir / JOURNAL_NAME, fsync=journal_fsync, truncate_to=0,
                metrics=self.metrics,
            )
            self._journal_append(
                "batch",
                version=JOURNAL_VERSION,
                batch_seed=self.batch_seed,
                workers=self.workers,
                capacity=self.capacity,
                tenant_quota=self.tenant_quota,
                retry={
                    "base": self.retry.base,
                    "factor": self.retry.factor,
                    "max_delay": self.retry.max_delay,
                    "jitter": self.retry.jitter,
                },
                heartbeat_interval=self.heartbeat_interval,
                heartbeat_timeout=self.heartbeat_timeout,
                poison_threshold=self.poison_threshold,
                chaos_active=self.chaos_plan is not None,
            )

    def _journal_append(self, kind: str, **payload) -> None:
        """Durably journal one record (no-op when journaling is off).

        ``ENOSPC`` surfaces as :class:`~repro.errors.StorageExhaustedError`
        and must not take the supervisor loop down: the batch degrades —
        one best-effort ``storage_degraded`` record, journaling off, a
        clean drain — instead of dying mid-flight with daemons running."""
        if self._journal is None:
            return
        try:
            with self._phase("journal"):
                self._journal.append(kind, **payload)
        except StorageExhaustedError as exc:
            self._on_storage_exhausted(exc)
            return
        if self.telemetry is not None:
            self.telemetry.counters.add("journal_records")

    def _on_storage_exhausted(self, exc: StorageExhaustedError) -> None:
        """Degrade gracefully when persistent storage fills up: journal a
        best-effort ``storage_degraded`` record (it may well fail too — the
        recursion is cut by the ``storage_degraded`` flag), stop journaling
        entirely, and drain the batch cleanly so in-flight attempts finish
        and everything else reports ``interrupted`` (resumable once space
        frees)."""
        if self.storage_degraded is not None:
            self._journal = None
            return
        self.storage_degraded = exc
        context = getattr(exc, "context", {}) or {}
        self._journal_append(
            "storage_degraded",
            op=context.get("op"),
            path=context.get("path"),
            error=str(exc),
        )
        self._journal = None
        if self.metrics is not None:
            self._m_storage_degraded.inc()
        self._emit_pool("storage_degraded", error=str(exc), op=context.get("op"))
        if not self._draining:
            self.request_drain()

    # -- observability -----------------------------------------------------------------
    @property
    def batch_id(self) -> str:
        """Stable batch identity: the workdir name (survives resume)."""
        return self.workdir.name

    def _phase(self, name: str):
        """Exclusive supervisor wall-time bucket (no-op with metrics off)."""
        return self._acct.phase(name) if self._acct is not None else nullcontext()

    def _init_metrics(self) -> None:
        """Create (get-or-create — registries are shareable) every
        instrument the supervisor records into, once, so the hot paths pay
        a plain attribute access instead of a registry lookup."""
        if self.metrics is None:
            return
        m = self.metrics
        self._m_admitted = m.counter(
            "jobs_admitted_total", "jobs admitted into the batch",
            ("lane", "tenant"),
        )
        self._m_completed = m.counter(
            "jobs_completed_total", "jobs that reached completed"
        )
        self._m_terminal = m.counter(
            "jobs_terminal_total", "jobs per terminal status", ("status",)
        )
        self._m_retried = m.counter("jobs_retried_total", "attempt retries scheduled")
        self._m_queue_depth = m.gauge(
            "queue_depth", "ready-to-dispatch jobs per priority lane", ("lane",)
        )
        self._m_tenant_active = m.gauge(
            "tenant_active_jobs", "admitted-but-unfinished jobs per tenant",
            ("tenant",),
        )
        self._m_tenant_quota = m.gauge(
            "tenant_quota", "per-tenant admission quota (0 = unlimited)"
        )
        self._m_admission_wait = m.histogram(
            "admission_wait_seconds",
            "queue-entry to first dispatch, per lane", ("lane",),
        )
        self._m_attempt = m.histogram(
            "attempt_seconds", "attempt latency per outcome", ("outcome",)
        )
        self._m_workers_alive = m.gauge("workers_alive", "live warm daemons")
        self._m_workers_busy = m.gauge("workers_busy", "daemons with a job in flight")
        self._m_spawned = m.counter(
            "workers_spawned_total", "daemons preforked (initial + replacements)"
        )
        self._m_hb_age = m.gauge(
            "worker_heartbeat_age_seconds",
            "seconds since a busy daemon's last liveness beat", ("worker",),
        )
        self._m_shm_bytes = m.counter(
            "shm_bytes_published_total", "shared-memory bytes published per batch"
        )
        self._m_sup_seconds = m.gauge(
            "supervisor_seconds",
            "exclusive supervisor wall-time per bucket", ("bucket",),
        )
        self._m_sdc = m.counter(
            "sdc_detections_total",
            "silent-data-corruption detections", ("detector",),
        )
        self._m_sdc_recovered = m.counter(
            "sdc_recoveries_total",
            "attempts that recovered in-run from silent corruption",
        )
        self._m_sdc_tiles = m.counter(
            "sdc_tiles_reexecuted_total",
            "containment units re-executed after an ABFT violation",
        )
        self._m_storage_degraded = m.counter(
            "storage_degraded_total",
            "batches degraded by ENOSPC on the journal/checkpoint path",
        )
        self._m_points = m.counter(
            "jobs_points_updated_total", "grid points updated by completed attempts"
        )
        self._m_stencil = m.counter(
            "jobs_stencil_seconds_total", "stencil seconds of completed attempts"
        )
        for lane in LANES:
            self._m_queue_depth.set(0, lane=lane)
        self._m_tenant_quota.set(self.tenant_quota or 0)

    def _refresh_gauges(self) -> None:
        """Recompute every level-style gauge from supervisor state (cheap:
        admitted jobs are bounded by ``capacity``)."""
        if self.metrics is None:
            return
        depth = {lane: 0 for lane in LANES}
        for priority, _, _job in self._ready:
            depth[LANES[priority]] += 1
        for lane, n in depth.items():
            self._m_queue_depth.set(n, lane=lane)
        for tenant, n in self._tenant_active.items():
            self._m_tenant_active.set(n, tenant=tenant)
        self._m_workers_alive.set(sum(1 for w in self._pool if w.alive))
        self._m_workers_busy.set(sum(1 for w in self._pool if w.busy))
        now_mono = time.monotonic()
        for w in self._pool:
            if w.busy:
                self._m_hb_age.set(
                    max(0.0, now_mono - w.last_beat), worker=w.worker_id
                )
        if self._acct is not None:
            for bucket, secs in self._acct.flush().items():
                self._m_sup_seconds.set(secs, bucket=bucket)

    def _status_summary(self) -> dict:
        summary = {
            "jobs": len(self._jobs),
            "terminal": self._terminals,
            "completed": sum(1 for j in self._jobs if j.result and j.result.ok),
            "active": self._active(),
            "ready": len(self._ready),
            "delayed": len(self._delayed),
            "streams_open": sum(1 for s in self._streams if not s.exhausted),
            "workers": {
                "configured": self.workers,
                "alive": sum(1 for w in self._pool if w.alive),
                "busy": sum(1 for w in self._pool if w.busy),
                "spawned": self.workers_spawned,
                "hung": self.hung_workers,
            },
            "draining": self._draining,
            "resumed": self.resumed,
            "storage_degraded": self.storage_degraded is not None,
            "elapsed_seconds": time.perf_counter() - self._epoch,
        }
        if self.breaker is not None:
            summary["breaker"] = {
                "engine": self.breaker.engine,
                "state": self.breaker.state,
                "transitions": len(self.breaker.transitions),
            }
        return summary

    def _write_status(self, final: bool = False) -> None:
        """Atomically refresh ``metrics.json`` in the batch dir (and, at
        batch end, the Prometheus exposition next to it).  Best-effort: a
        full disk must not take the batch down."""
        if self.metrics is None:
            return
        self._refresh_gauges()
        try:
            self.metrics.write_json(
                self.workdir / METRICS_NAME,
                extra={
                    "batch_id": self.batch_id,
                    "final": final,
                    "status": self._status_summary(),
                },
            )
            if final:
                # prom is text, not JSON — same tmp+replace idiom by hand
                tmp = self.workdir / (PROM_NAME + ".tmp")
                tmp.write_text(self.metrics.exposition())
                os.replace(tmp, self.workdir / PROM_NAME)
        except OSError:
            pass

    def _maybe_status(self) -> None:
        """Refresh the live ``metrics.json`` when the cadence is due."""
        if self.metrics is None or self.status_interval <= 0:
            return
        now = time.perf_counter()
        if now - self._last_status >= self.status_interval:
            self._last_status = now
            self._write_status()

    def _trace_epoch(self) -> float:
        """The batch-relative zero every merged span is measured from."""
        if self.telemetry is not None and self.telemetry.epoch is not None:
            return self.telemetry.epoch
        return self._epoch

    def _attach_trace(self, record: AttemptRecord, meta: dict) -> None:
        """Pop the attempt's serialized span payload out of *meta* (it must
        not bloat ``result.npz``), stamp it with the handshake clock
        offset, and hang it on the attempt record for the merger."""
        if not isinstance(meta, dict):
            return
        payload = meta.pop("telemetry", None)
        if payload is None:
            return
        ctx = payload.setdefault("context", {})
        dispatch = ctx.get("dispatch_perf")
        recv = ctx.get("recv_perf")
        if isinstance(dispatch, float) and isinstance(recv, float):
            # equate the pipe-write and pipe-read instants: child time t is
            # batch-relative t + offset, error bounded by the pipe latency
            ctx["clock_offset_s"] = (dispatch - self._trace_epoch()) - recv
        else:
            # serial mode: recorder and supervisor share one clock
            ctx["clock_offset_s"] = -self._trace_epoch()
        record.trace = payload

    # -- admission ---------------------------------------------------------------------
    def _active(self) -> int:
        return sum(1 for j in self._jobs if not j.terminal)

    def _tenant_load(self, tenant: str) -> int:
        return self._tenant_active.get(tenant, 0)

    def submit(self, specs: Union[JobSpec, Iterable[JobSpec]]) -> None:
        """Admit one spec, or register a *stream* of them.

        A single :class:`JobSpec` is admitted immediately —
        :class:`QueueSaturatedError` at capacity (or over the tenant quota)
        is the backpressure signal.  Any other iterable is registered as a
        stream and pulled lazily while :meth:`run` drives the batch: a spec
        is only drawn once there is admission capacity (and tenant quota)
        for it, so an effectively-infinite survey generator runs in bounded
        memory.
        """
        if isinstance(specs, JobSpec):
            self._admit(specs, streamed=False)
            return None
        self._streams.append(_Stream(specs))
        return None

    def _admit(self, spec: JobSpec, streamed: bool) -> None:
        if spec.job_id in self._by_id:
            raise ValueError(f"duplicate job_id {spec.job_id!r}")
        pending = self._active()
        if pending >= self.capacity:
            raise QueueSaturatedError(
                f"admission queue is full ({pending}/{self.capacity}); "
                "drain the pool or shed load",
                capacity=self.capacity,
                pending=pending,
            )
        if (
            self.tenant_quota is not None
            and self._tenant_load(spec.tenant) >= self.tenant_quota
        ):
            raise QueueSaturatedError(
                f"tenant {spec.tenant!r} is at its admission quota "
                f"({self._tenant_load(spec.tenant)}/{self.tenant_quota})",
                capacity=self.tenant_quota,
                pending=self._tenant_load(spec.tenant),
                tenant=spec.tenant,
            )
        job_dir = self.workdir / spec.job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        job = _Job(
            index=len(self._jobs),
            spec=spec,
            job_dir=job_dir,
            jitter_rng=self.retry.rng_for(self.batch_seed, len(self._jobs)),
        )
        self._journal_append(
            "admit", job=spec.job_id, index=job.index, streamed=streamed,
            spec=spec.to_dict(),
        )
        self._jobs.append(job)
        self._by_id[spec.job_id] = job
        self._tenant_active[spec.tenant] = self._tenant_load(spec.tenant) + 1
        self._push_ready(job)
        if self.metrics is not None:
            self._m_admitted.inc(lane=spec.lane, tenant=spec.tenant)
        self._emit(
            "queued", job, lane=spec.lane, tenant=spec.tenant, streamed=streamed
        )

    def _push_ready(self, job: _Job) -> None:
        self._seq += 1
        heapq.heappush(self._ready, (job.spec.lane_priority, self._seq, job))

    def _pump_streams(self) -> bool:
        """Pull specs from registered streams while admission allows;
        True if anything was admitted.

        A stream whose iterator raises is the *caller's* bug, not the
        batch's: the broken stream is dropped and recorded as a
        :class:`~repro.errors.StreamAdmissionError` on the report, while
        every job it already yielded drains to a terminal state — only the
        specs it never produced are lost.
        """
        admitted = False
        with self._phase("admission"):
            while self._streams and self._active() < self.capacity:
                stream: _Stream = self._streams[0]
                try:
                    spec = stream.next_spec()
                except Exception as exc:  # noqa: BLE001 — caller-owned iterator
                    self._stream_failed(stream, exc)
                    self._streams.popleft()
                    continue
                if spec is None:
                    self._streams.popleft()
                    continue
                if (
                    self.tenant_quota is not None
                    and self._tenant_load(spec.tenant) >= self.tenant_quota
                ):
                    stream.held = spec  # park it; the stream stalls until drain
                    break
                self._admit(spec, streamed=True)
                stream.admitted += 1
                admitted = True
        return admitted

    def _stream_failed(self, stream: _Stream, exc: BaseException) -> None:
        reason = f"{type(exc).__name__}: {exc}"
        err = StreamAdmissionError(
            f"spec stream raised while being pulled ({reason}); dropping the "
            f"stream after {stream.admitted} admitted job(s)",
            admitted=stream.admitted,
            reason=reason,
        )
        err.__cause__ = exc
        self._stream_errors.append(str(err))
        self._journal_append(
            "stream_failed", admitted=stream.admitted, reason=reason
        )
        self._emit_pool("stream_failed", admitted=stream.admitted, error=reason)

    # -- events ------------------------------------------------------------------------
    def _emit(self, kind: str, job: _Job, **info) -> None:
        self.events.append(
            {
                "ts": time.perf_counter() - self._epoch,
                "kind": kind,
                "job": job.spec.job_id,
                **info,
            }
        )
        if self.telemetry is not None:
            self.telemetry.counters.add(f"jobs_{kind}")
            self.telemetry.event(f"job.{kind}", phase="jobs", job=job.spec.job_id, **info)

    def _emit_pool(self, kind: str, **info) -> None:
        """A batch-scoped event attributable to no single job or worker."""
        self.events.append(
            {
                "ts": time.perf_counter() - self._epoch,
                "kind": kind,
                "job": "",
                **info,
            }
        )
        if self.telemetry is not None:
            self.telemetry.counters.add(f"jobs_{kind}")
            self.telemetry.event(f"job.{kind}", phase="jobs", **info)

    def _emit_worker(self, kind: str, worker_id: int, **info) -> None:
        self.events.append(
            {
                "ts": time.perf_counter() - self._epoch,
                "kind": kind,
                "job": "",
                "worker": worker_id,
                **info,
            }
        )
        if self.telemetry is not None:
            self.telemetry.counters.add(f"jobs_{kind}")
            self.telemetry.event(f"job.{kind}", phase="jobs", worker=worker_id, **info)

    # -- terminal transitions ----------------------------------------------------------
    def _finish(self, job: _Job, result: JobResult, kind: str, **info) -> None:
        result.attempts = job.attempts
        result.elapsed = job.elapsed(time.perf_counter())
        job.result = result
        job.worker = None
        self._tenant_active[job.spec.tenant] = max(
            0, self._tenant_load(job.spec.tenant) - 1
        )
        self._journal_append(
            "terminal",
            job=job.spec.job_id,
            status=result.status,
            attempts=len(job.attempts),
            error=f"{type(result.error).__name__}: {result.error}"
            if result.error
            else "",
        )
        self._emit(kind, job, **info)
        self._terminals += 1
        if self.metrics is not None:
            self._m_terminal.inc(status=result.status)
        self._chaos_kill_supervisor()

    def _chaos_kill_supervisor(self) -> None:
        """Chaos ``kill_supervisor_after``: SIGKILL *this* process once N
        jobs are terminal — the journal records just fsynced are all a
        resume gets, exactly like an OOM-killed parent."""
        if self.chaos_plan is None:
            return
        threshold = self.chaos_plan.config.kill_supervisor_after
        if threshold is not None and self._terminals >= threshold:
            os.kill(os.getpid(), signal.SIGKILL)

    def _complete(self, job: _Job, rec, meta: dict, now: float) -> None:
        record = job.attempts[-1]
        record.ended = now
        record.outcome = "completed"
        record.engine = meta.get("engine", "")
        record.resumed_from = meta.get("resumed_from")
        record.worker = meta.get("worker")
        record.warm = bool(meta.get("warm", False))
        record.phases = dict(meta.get("phases", {}))
        record.caches = dict(meta.get("caches", {}))
        # peel the span payload off *before* the result goes durable: traces
        # are trace-file material, not result.npz material
        self._attach_trace(record, meta)
        if self.metrics is not None:
            self._m_attempt.observe(
                max(0.0, now - record.started), outcome="completed"
            )
            self._m_completed.inc()
            work = meta.get("work") or {}
            if work.get("points_updated"):
                self._m_points.inc(float(work["points_updated"]))
            if work.get("stencil_seconds"):
                self._m_stencil.inc(float(work["stencil_seconds"]))
        if self.workers == 0 and self.telemetry is not None:
            # serial mode: the attempt ran on this process's clock — fold its
            # phase seconds into the pool buffer so batch coverage holds
            for ph_name, secs in (meta.get("phase_seconds") or {}).items():
                self.telemetry.add_phase(ph_name, float(secs))
        self._count_warmth(record)
        self._breaker_feedback(job, meta)
        # make the result durable *before* journaling the outcome: the
        # outcome record carries the file digest, so a resume trusts
        # result.npz only when both the sidecar and the journal agree
        worker_mod.write_result(job.dir, rec, meta)
        digest = write_digest(worker_mod._result_path(job.dir))
        self._journal_append(
            "outcome",
            job=job.spec.job_id,
            attempt=record.attempt,
            outcome="completed",
            engine=record.engine,
            digest=digest,
        )
        # an ABFT guard that detected corruption *and recovered in-run*
        # leaves the outcome "completed" — the detection must still reach
        # the journal and the metrics, or recovered corruption is invisible
        abft = meta.get("abft") if isinstance(meta, dict) else None
        if isinstance(abft, dict) and abft.get("detections"):
            detections = int(abft["detections"])
            tiles = int(abft.get("tiles_reexecuted", 0))
            self._journal_append(
                "sdc",
                job=job.spec.job_id,
                attempt=record.attempt,
                recovered=True,
                detector="growth",
                detections=detections,
                tiles_reexecuted=tiles,
                micro_snapshot_bytes=int(abft.get("micro_snapshot_bytes", 0)),
            )
            if self.metrics is not None:
                self._m_sdc.inc(detections, detector="growth")
                self._m_sdc_recovered.inc()
                if tiles:
                    self._m_sdc_tiles.inc(tiles)
            self._emit(
                "sdc_recovered", job, attempt=record.attempt,
                detections=detections, tiles_reexecuted=tiles,
            )
        job.consecutive_crashes = 0
        self._finish(
            job,
            JobResult(
                spec=job.spec,
                status="completed",
                receivers=rec,
                engine=meta.get("engine", ""),
                fallbacks=meta.get("fallbacks", []),
            ),
            "completed",
            attempts=len(job.attempts),
        )

    def _count_warmth(self, record: AttemptRecord) -> None:
        """Per-worker warm/cold attempt counters plus aggregated cache
        tallies, into the attached telemetry buffer."""
        if self.telemetry is None:
            return
        counters = self.telemetry.counters
        kind = "warm" if record.warm else "cold"
        counters.add(f"jobs_{kind}_attempts")
        if record.worker is not None:
            counters.add(f"worker{record.worker}.jobs")
            counters.add(f"worker{record.worker}.{kind}_attempts")
        for key, n in record.caches.items():
            counters.add(f"jobs_{key}", n)

    def _timeout(self, job: _Job, now: float) -> None:
        if job.attempts and not job.attempts[-1].outcome:
            job.attempts[-1].ended = now
            job.attempts[-1].outcome = "timeout"
            if self.metrics is not None:
                self._m_attempt.observe(
                    max(0.0, now - job.attempts[-1].started), outcome="timeout"
                )
        self._journal_append(
            "outcome",
            job=job.spec.job_id,
            attempt=job.attempts[-1].attempt if job.attempts else 0,
            outcome="timeout",
        )
        if self.breaker is not None and job.dispatched_engine == self.breaker.engine:
            self.breaker.record_inconclusive(job.dispatched_engine)
        err = JobTimeoutError(
            f"job {job.spec.job_id} exceeded its {job.spec.deadline:.3f}s deadline",
            job_id=job.spec.job_id,
            deadline=job.spec.deadline,
            elapsed=job.elapsed(now),
        )
        self._finish(
            job,
            JobResult(spec=job.spec, status="timeout", error=err),
            "timeout",
            elapsed=job.elapsed(now),
        )

    def _fail_attempt(self, job: _Job, error: BaseException, outcome: str, now: float) -> None:
        record = job.attempts[-1]
        record.ended = now
        record.outcome = outcome
        record.error = f"{type(error).__name__}: {error}"
        if self.metrics is not None:
            self._m_attempt.observe(max(0.0, now - record.started), outcome=outcome)
        self._journal_append(
            "outcome",
            job=job.spec.job_id,
            attempt=record.attempt,
            outcome=outcome,
            error=record.error,
        )
        if outcome == "sdc":
            # unrecovered silent corruption: journal the audit record, count
            # it, and stop trusting the shared model segments for this job —
            # the retry recomputes them locally (bit-identical)
            detector = (getattr(error, "context", {}) or {}).get(
                "detector", "growth"
            )
            job.distrust_shm = True
            self._journal_append(
                "sdc",
                job=job.spec.job_id,
                attempt=record.attempt,
                recovered=False,
                detector=detector,
                error=record.error,
            )
            if self.metrics is not None:
                self._m_sdc.inc(detector=detector)
            self._emit("sdc", job, attempt=record.attempt, detector=detector)
        job.consecutive_crashes = (
            job.consecutive_crashes + 1 if outcome == "crash" else 0
        )
        if (
            outcome == "crash"
            and self.breaker is not None
            and job.dispatched_engine == self.breaker.engine
        ):
            self.breaker.record_inconclusive(job.dispatched_engine)
        if job.consecutive_crashes >= self.poison_threshold:
            err = PoisonJobError(
                f"job {job.spec.job_id} quarantined: it crashed "
                f"{job.consecutive_crashes} consecutive daemon(s); forensics "
                f"under {job.dir}",
                job_id=job.spec.job_id,
                crashes=job.consecutive_crashes,
                attempts=[a.to_dict() for a in job.attempts],
                job_dir=str(job.dir),
            )
            err.__cause__ = error
            self._finish(
                job,
                JobResult(spec=job.spec, status="quarantined", error=err),
                "quarantined",
                crashes=job.consecutive_crashes,
            )
            return
        if job.attempt_no + 1 >= job.spec.max_attempts:
            err = RetryExhaustedError(
                f"job {job.spec.job_id} failed all {job.spec.max_attempts} attempt(s); "
                f"last error: {record.error}",
                job_id=job.spec.job_id,
                attempts=[a.to_dict() for a in job.attempts],
            )
            err.__cause__ = error
            self._finish(job, JobResult(spec=job.spec, status="exhausted", error=err),
                         "exhausted", attempts=len(job.attempts))
            return
        job.attempt_no += 1
        # backoff never sleeps a job past its own deadline: cap the delay at
        # the remaining budget (the jitter draw is consumed regardless, so
        # the per-job backoff stream stays deterministic)
        budget = None
        if job.spec.deadline is not None and job.first_started is not None:
            budget = job.spec.deadline - job.elapsed(now)
        delay = self.retry.delay(
            job.attempt_no, job.jitter_rng, budget=budget, metrics=self.metrics,
            outcome=outcome,
        )
        self._seq += 1
        heapq.heappush(self._delayed, (now + delay, self._seq, job))
        if self.metrics is not None:
            self._m_retried.inc()
        self._emit("retried", job, attempt=job.attempt_no, delay=delay, error=record.error)

    def _breaker_feedback(self, job: _Job, meta: dict) -> None:
        """Feed daemon-reported engine outcomes into the parent's breaker.

        Multiprocess mode only: in serial mode the breaker rides the engine
        ladder in-process and has already recorded the outcome itself.
        """
        br = self.breaker
        if br is None or self.workers == 0 or job.dispatched_engine != br.engine:
            return
        failed = any(f.get("failed") == br.engine for f in meta.get("fallbacks", ()))
        if failed:
            br.record_failure(br.engine)
        else:
            br.record_success(br.engine)

    # -- warm-daemon pool --------------------------------------------------------------
    def _spawn_worker(self) -> WarmWorker:
        self._worker_seq += 1
        self.workers_spawned += 1
        worker = WarmWorker(
            self._ctx,
            self._worker_seq,
            self._handles,
            heartbeat_interval=self.heartbeat_interval,
        )
        self._pool.append(worker)
        if self.metrics is not None:
            self._m_spawned.inc()
        self._emit_worker("worker_spawned", worker.worker_id, pid=worker.proc.pid)
        return worker

    def _retire(self, worker: WarmWorker, crashed: bool = False) -> None:
        """Drop *worker* from the pool (its process already dead or being
        killed); shared segments stay valid — only the mapping died."""
        if worker in self._pool:
            self._pool.remove(worker)
        if self.metrics is not None:
            self._m_hb_age.remove(worker=worker.worker_id)
        worker.kill()  # no-op if already dead; reaps the process either way
        self._emit_worker(
            "worker_crashed" if crashed else "worker_retired",
            worker.worker_id,
            exitcode=worker.exitcode,
            jobs=worker.jobs_dispatched,
        )

    def _idle_worker(self) -> Optional[WarmWorker]:
        for worker in self._pool:
            if not worker.busy and worker.alive:
                return worker
        if len(self._pool) < self.workers:
            return self._spawn_worker()
        return None

    def _outstanding(self) -> int:
        """Jobs that will still need a daemon (ready + backed off + maybe
        more behind the streams)."""
        n = len(self._ready) + len(self._delayed)
        if any(not s.exhausted for s in self._streams):
            n += 1
        return n

    def _replenish(self) -> None:
        """Prefork replacements for crashed/retired daemons while there is
        work left for them to do."""
        if self._draining:
            return  # no new daemons for work that will not dispatch
        want = min(self.workers, self._outstanding() + sum(w.busy for w in self._pool))
        while len(self._pool) < want:
            self._spawn_worker()

    # -- dispatch ----------------------------------------------------------------------
    def _effective_spec(self, job: _Job, now: float, reroute: bool = True) -> JobSpec:
        spec = job.spec
        degraded = False
        if (
            job.attempt_no > 0
            and spec.deadline is not None
            and job.elapsed(now) > self.pressure_fraction * spec.deadline
        ):
            downgraded = _degrade(spec)
            if downgraded is not spec:
                spec, degraded = downgraded, True
                self._emit("degraded", job, schedule=spec.schedule)
        if (
            reroute
            and self.breaker is not None
            and spec.engine == self.breaker.engine == "fused"
            and not self.breaker.allow("fused")
        ):
            from dataclasses import replace

            spec = replace(spec, engine="kernel")
            degraded = True
            self._emit("rerouted", job, engine="kernel")
        job._degraded = degraded
        return spec

    def _dispatch(self, job: _Job, now: float) -> bool:
        """Hand *job* to an idle warm daemon; False when none is available."""
        worker = self._idle_worker()
        if worker is None:
            return False
        if job.first_started is None:
            if self.metrics is not None:
                self._m_admission_wait.observe(
                    max(0.0, time.perf_counter() - job.queued_ts),
                    lane=job.spec.lane,
                )
            job.first_started = now
        spec = self._effective_spec(job, now)
        job.dispatched_engine = spec.engine
        resume = job.attempt_no > 0 or job.force_resume
        entry = (
            self.chaos_plan.entry(job.index, spec.nt) if self.chaos_plan else None
        )
        job.attempts.append(
            AttemptRecord(
                attempt=job.attempt_no,
                started=now,
                degraded=getattr(job, "_degraded", False),
            )
        )
        step = _resume_step(job.dir) if resume else None
        if step is not None:
            self._emit("resumed", job, step=step, attempt=job.attempt_no)
        # write-ahead: the attempt is journaled before it crosses the pipe,
        # so a supervisor crash can never lose track of an in-flight job
        self._journal_append(
            "attempt",
            job=job.spec.job_id,
            attempt=job.attempt_no,
            engine=spec.engine,
            resume=resume,
            step=step,
        )
        ctx = {"batch": self.batch_id, "trace": True} if self.trace else None
        if job.distrust_shm:
            ctx = {**(ctx or {}), "distrust_shm": True}
        try:
            worker.dispatch(spec, str(job.dir), job.attempt_no, resume, entry, ctx)
        except (BrokenPipeError, OSError):
            # the daemon died between polls; retire it and try the next one
            self._retire(worker, crashed=True)
            job.attempts.pop()
            if step is not None:
                self.events.pop()  # withdraw the provisional "resumed"
            return self._dispatch(job, now)
        worker.job = job
        job.worker = worker
        job.force_resume = False
        self._emit(
            "started", job, attempt=job.attempt_no, engine=spec.engine,
            worker=worker.worker_id,
        )
        return True

    # -- supervision -------------------------------------------------------------------
    def _handle_message(self, worker: WarmWorker, msg, now: float) -> None:
        job = worker.job
        worker.job = None
        kind = msg[0]
        if kind == "ok":
            _, _job_id, _attempt, rec, meta = msg
            self._complete(job, rec, meta, now)
        else:
            _, _job_id, _attempt, error = msg
            self._fail_attempt(job, error, _classify_failure(error), now)

    def _crash(self, worker: WarmWorker, now: float) -> None:
        """The daemon died with a job in flight and nothing in the pipe."""
        job = worker.job
        worker.job = None
        crash = WorkerCrashError(
            f"worker for job {job.spec.job_id} died without reporting "
            f"(exitcode {worker.exitcode})",
            job_id=job.spec.job_id,
            exitcode=worker.exitcode,
            attempt=job.attempts[-1].attempt,
        )
        self._fail_attempt(job, crash, "crash", now)

    def _chaos_kill(self, now: float) -> None:
        """Deal out pending chaos kills: SIGKILL the daemon of an attempt-0
        job as soon as its first checkpoint is on disk (guaranteeing a
        mid-run kill and a genuine resume on retry)."""
        if self._kills_remaining <= 0:
            return
        busy = sorted(
            (w for w in self._pool if w.busy), key=lambda w: w.job.index
        )
        for worker in busy:
            if self._kills_remaining <= 0:
                break
            job = worker.job
            if job.chaos_killed or job.attempts[-1].attempt != 0:
                continue
            if _resume_step(job.dir) is None:
                continue
            job.chaos_killed = True
            worker.proc.kill()
            self._kills_remaining -= 1
            self.kills_done += 1
            self._emit("killed", job, signal="SIGKILL", worker=worker.worker_id)

    def _hung(self, worker: WarmWorker, now: float) -> None:
        """A busy daemon went heartbeat-silent past ``heartbeat_timeout``:
        alive to the OS, wedged in practice.  SIGKILL it, honour any result
        that raced into the pipe, otherwise retry the job from checkpoint,
        and let :meth:`_replenish` prefork a replacement."""
        job = worker.job
        silent = time.monotonic() - worker.last_beat
        worker.proc.kill()
        worker.proc.join()
        late = worker.recv_nowait()
        worker.job = None
        self.hung_workers += 1
        self._emit_worker(
            "worker_hung", worker.worker_id, job=job.spec.job_id,
            silent=round(silent, 3),
        )
        if late is not None and late[0] == "ok":
            self._complete(job, late[3], late[4], now)
        else:
            hang = WorkerCrashError(
                f"worker {worker.worker_id} serving job {job.spec.job_id} went "
                f"heartbeat-silent for {silent:.2f}s (> "
                f"{self.heartbeat_timeout}s): livelocked, killed",
                job_id=job.spec.job_id,
                exitcode=worker.exitcode,
                attempt=job.attempts[-1].attempt,
            )
            self._fail_attempt(job, hang, "hang", now)
        self._retire(worker)

    def _poll(self, now: float) -> bool:
        """One supervision sweep; True if any state changed."""
        changed = False
        if not self._draining:
            changed = self._pump_streams()
        self._chaos_kill(now)
        for worker in list(self._pool):
            if not worker.busy:
                if not worker.alive:  # spontaneous death of an idle daemon
                    self._retire(worker, crashed=True)
                    changed = True
                continue
            job = worker.job
            msg = worker.recv_nowait()
            if msg is None and not worker.alive:
                worker.proc.join()
                msg = worker.recv_nowait()  # a result may have raced the death
                if msg is not None:
                    self._handle_message(worker, msg, now)
                else:
                    self._crash(worker, now)
                self._retire(worker, crashed=True)
                changed = True
                continue
            if msg is not None:
                self._handle_message(worker, msg, now)
                changed = True
            elif job.over_deadline(now):
                worker.proc.kill()
                worker.proc.join()
                late = worker.recv_nowait()  # completed in the kill window?
                worker.job = None
                if late is not None and late[0] == "ok":
                    self._complete(job, late[3], late[4], now)
                else:
                    self._timeout(job, now)
                self._retire(worker)
                changed = True
            elif worker.stalled(self.heartbeat_timeout):
                self._hung(worker, now)
                changed = True
        # promote delayed jobs whose backoff expired (or deadline died waiting)
        while self._delayed and self._delayed[0][0] <= now:
            _, _, job = heapq.heappop(self._delayed)
            if job.over_deadline(now):
                self._timeout(job, now)
            else:
                self._push_ready(job)
            changed = True
        # deadline can also expire while a job waits in backoff
        for _, _, job in list(self._delayed):
            if job.over_deadline(now):
                self._delayed = [(t, s, j) for t, s, j in self._delayed if j is not job]
                heapq.heapify(self._delayed)
                self._timeout(job, now)
                changed = True
        self._replenish()
        while self._ready and not self._draining:
            _, _, job = self._ready[0]
            with self._phase("dispatch"):
                dispatched = self._dispatch(job, now)
            if not dispatched:
                break
            heapq.heappop(self._ready)
            changed = True
        self._maybe_status()
        return changed

    def _busy_conns(self) -> List:
        return [w.conn for w in self._pool if w.busy and w.alive]

    # -- graceful drain ----------------------------------------------------------------
    def request_drain(self, signum: Optional[int] = None) -> None:
        """Begin a graceful shutdown: stop pulling streams and dispatching
        ready jobs, let in-flight attempts finish, then return a partial —
        resumable — report with unfinished jobs marked ``interrupted``.

        Called by the SIGTERM/SIGINT handlers :meth:`run` installs;
        idempotent, safe from signal context (it only flips a flag and
        appends — the drive loop does the actual winding down)."""
        if self._draining:
            return
        self._draining = True
        self._drain_signal = signum
        self._journal_append("drain", signal=signum)
        self._emit_pool("drain", signal=signum)

    def _finish_interrupted(self) -> None:
        """Terminal bookkeeping for every job the drain left unfinished —
        ``interrupted`` is resumable: the journal has the admission, and the
        checkpoints have the progress."""
        for job in self._jobs:
            if not job.terminal:
                self._finish(
                    job,
                    JobResult(spec=job.spec, status="interrupted"),
                    "interrupted",
                    attempts=len(job.attempts),
                )

    # -- the drive loop ----------------------------------------------------------------
    def _install_signal_handlers(self) -> dict:
        """SIGTERM/SIGINT → graceful drain while the batch runs.  Returns
        the displaced handlers (restored in :meth:`run`'s ``finally``); a
        no-op off the main thread, where Python forbids ``signal.signal``."""
        previous = {}
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(
                    sig, lambda signum, frame: self.request_drain(signum)
                )
            except ValueError:  # not the main thread
                break
        return previous

    def run(self) -> BatchReport:
        """Drive every admitted job (and stream) to a terminal state — or,
        under a drain signal, every in-flight attempt to completion and the
        rest to ``interrupted``."""
        t0 = time.perf_counter()
        previous_handlers = self._install_signal_handlers()
        if self._acct is not None:
            self._acct.push("supervise")
        batch_span = (
            self.telemetry.begin("batch", phase="jobs", batch=self.batch_id)
            if self.telemetry is not None
            else None
        )
        try:
            if self.workers == 0:
                self._run_serial()
            else:
                self._publish_shared()
                # prefork the daemon fleet once, before the first dispatch
                self._replenish()
                while True:
                    if self._draining:
                        if not any(w.busy for w in self._pool):
                            break
                    elif not (
                        self._ready
                        or self._delayed
                        or any(w.busy for w in self._pool)
                        or any(not s.exhausted for s in self._streams)
                    ):
                        break
                    if not self._poll(time.perf_counter()):
                        conns = self._busy_conns()
                        with self._phase("idle"):
                            if conns:  # wake on the first daemon report
                                mp_connection.wait(conns, timeout=self.poll_interval)
                            else:
                                time.sleep(self.poll_interval)
            self._finish_interrupted()
            self._journal_append(
                "batch_end",
                drained=self._draining,
                completed=sum(1 for j in self._jobs if j.result and j.result.ok),
                terminals=self._terminals,
            )
        finally:
            for sig, handler in previous_handlers.items():
                signal.signal(sig, handler)
            # the journal stays open: the pool outlives run() (submitting
            # into freed capacity and running again is supported), and every
            # append is already flushed/fsynced — closing is GC's job
            with self._phase("drain"):
                for worker in self._pool:  # never leak daemons
                    worker.shutdown()
                self._pool.clear()
                if self._registry is not None:  # never leak /dev/shm segments
                    self._registry.close()
                    self._registry = None
                self._handles = {}
            if batch_span is not None:
                self.telemetry.end(batch_span)
            if self._acct is not None:
                self._acct.pop()  # close the supervise root
                if self.telemetry is not None:
                    # charge the supervisor's own exclusive time (everything
                    # but the attempts' execute bucket, which the attempt
                    # phases already cover) to the "jobs" cost centre — as a
                    # delta, so repeated run() calls never double-charge
                    total = sum(
                        s for b, s in self._acct.seconds.items() if b != "execute"
                    )
                    self.telemetry.add_phase("jobs", total - self._jobs_phase_added)
                    self._jobs_phase_added = total
            self._write_status(final=True)
            if self._tmp is not None:
                self._tmp.cleanup()
                self._tmp = None
        wall = time.perf_counter() - t0
        return BatchReport(
            results=[j.result for j in self._jobs],
            wall_seconds=wall,
            events=self.events,
            workers=self.workers,
            kills=self.kills_done,
            workers_spawned=self.workers_spawned,
            drained=self._draining,
            resumed=self.resumed,
            hung_workers=self.hung_workers,
            stream_errors=list(self._stream_errors),
            supervisor_seconds=(
                dict(self._acct.seconds) if self._acct is not None else {}
            ),
            batch_id=self.batch_id,
            metrics=self.metrics.snapshot() if self.metrics is not None else None,
        )

    def _publish_shared(self) -> None:
        """Publish the batch's read-only model arrays into shared memory
        once; every daemon attaches them zero-copy at prefork.  The segment
        names are journaled so a resumed supervisor can unlink what a
        SIGKILLed predecessor (whose ``finally`` never ran) leaked."""
        from .shm import SharedArrayRegistry

        if self._registry is not None:
            return
        self._registry = SharedArrayRegistry()
        published = 0
        for key, array in worker_mod.model_arrays().items():
            self._registry.publish(key, array)
            published += int(array.nbytes)
        if self.metrics is not None and published:
            self._m_shm_bytes.inc(published)
        self._handles = self._registry.handles()
        self._journal_append("shm", names=list(self._registry.segment_names()))

    # -- serial (workers=0) ------------------------------------------------------------
    def _run_serial(self) -> None:
        """Same state machine, one job at a time in this process: no kills,
        deadlines enforced post-hoc (an in-process attempt cannot be
        preempted), and the breaker rides the engine ladder directly.  The
        in-process :class:`WarmState` gives the serial executor the same
        cross-job cache warmth a daemon enjoys."""
        warm = WarmState()
        self._pump_streams()
        while self._ready and not self._draining:
            _, _, job = heapq.heappop(self._ready)
            while not job.terminal and not self._draining:
                now = time.perf_counter()
                if job.first_started is None:
                    job.first_started = now
                if job.over_deadline(now):
                    self._timeout(job, now)
                    break
                # no breaker reroute here: the in-process engine ladder
                # consults the breaker itself (Operator._build_sweeps)
                spec = self._effective_spec(job, now, reroute=False)
                job.dispatched_engine = spec.engine
                resume = job.attempt_no > 0 or job.force_resume
                job.force_resume = False
                entry = (
                    self.chaos_plan.entry(job.index, spec.nt)
                    if self.chaos_plan
                    else None
                )
                job.attempts.append(
                    AttemptRecord(
                        attempt=job.attempt_no,
                        started=now,
                        degraded=getattr(job, "_degraded", False),
                    )
                )
                step = _resume_step(job.dir) if resume else None
                if step is not None:
                    self._emit("resumed", job, step=step, attempt=job.attempt_no)
                self._journal_append(
                    "attempt", job=job.spec.job_id, attempt=job.attempt_no,
                    engine=spec.engine, resume=resume, step=step,
                )
                self._emit("started", job, attempt=job.attempt_no, engine=spec.engine)
                try:
                    with self._phase("execute"):
                        rec, meta = worker_mod.execute_attempt(
                            spec,
                            job.dir,
                            attempt=job.attempt_no,
                            resume=resume,
                            chaos=entry,
                            breaker=self.breaker,
                            warm=warm,
                            trace=self.trace,
                            ctx={"batch": self.batch_id} if self.trace else None,
                        )
                except Exception as exc:
                    now = time.perf_counter()
                    if job.over_deadline(now):
                        self._timeout(job, now)
                        break
                    self._fail_attempt(job, exc, _classify_failure(exc), now)
                    if not job.terminal and self._delayed:
                        ready_time, _, delayed_job = heapq.heappop(self._delayed)
                        assert delayed_job is job
                        with self._phase("idle"):
                            time.sleep(max(0.0, ready_time - time.perf_counter()))
                    continue
                now = time.perf_counter()
                if job.over_deadline(now):
                    self._timeout(job, now)
                else:
                    self._complete(job, rec, meta, now)
                self._maybe_status()
            if not self._draining:
                self._pump_streams()

    # -- crash-safe resume -------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        batch_dir,
        workers: Optional[int] = None,
        telemetry=None,
        poll_interval: float = 0.02,
        start_method: Optional[str] = None,
        journal_fsync: bool = True,
        metrics=None,
        trace: bool = False,
        status_interval: float = 0.5,
    ) -> "JobPool":
        """Reconstruct an interrupted batch from its journal; :meth:`run`
        the returned pool to drive it to completion.

        Replays the write-ahead journal of *batch_dir* (tolerating a torn
        tail — the longest verified prefix wins, and the file is truncated
        back to it before new records append), then:

        * unlinks the ``/dev/shm`` segments the dead supervisor journaled
          but — SIGKILLed before its ``finally`` — never unlinked;
        * preloads every job whose ``result.npz`` is durable *and* verified
          (digest sidecar plus the journal's recorded digest) as completed,
          bit-identical to what the dead batch produced;
        * reconstructs durable terminal failures (``timeout``/
          ``exhausted``/``quarantined``) without re-running them;
        * re-admits everything else with its journaled attempt budget and
          consecutive-crash count; a job whose attempt was in flight at the
          crash resumes from its newest verified checkpoint snapshot.

        *workers* (and the other parameters) default to the journaled batch
        header.  Chaos injection is deliberately **not** re-armed: the crash
        the chaos config manufactured already happened — a resume runs
        clean, which is also what keeps ``kill_supervisor_after`` from
        re-killing every successor.
        """
        batch_dir = Path(batch_dir)
        replay = load_journal(batch_dir / JOURNAL_NAME)
        header = replay.header  # raises JournalCorruptError when unusable
        # reclaim what the dead supervisor leaked into /dev/shm
        from .shm import unlink_stale

        reclaimed = []
        for rec in replay.for_kind("shm"):
            for name in rec.get("names", ()):
                if unlink_stale(name):
                    reclaimed.append(name)
        retry_cfg = header.get("retry") or {}
        pool = cls(
            workers=header.get("workers", 4) if workers is None else workers,
            capacity=header.get("capacity", DEFAULT_CAPACITY),
            retry=RetryPolicy(**retry_cfg) if retry_cfg else None,
            batch_seed=header.get("batch_seed", 0),
            workdir=batch_dir,
            telemetry=telemetry,
            poll_interval=poll_interval,
            start_method=start_method,
            tenant_quota=header.get("tenant_quota"),
            journal=False,  # reattached below, past the verified prefix
            heartbeat_interval=header.get("heartbeat_interval", 0.25),
            heartbeat_timeout=header.get("heartbeat_timeout", 60.0),
            poison_threshold=header.get("poison_threshold", 3),
            metrics=metrics,
            trace=trace,
            status_interval=status_interval,
        )
        pool._journal = BatchJournal(
            batch_dir / JOURNAL_NAME,
            fsync=journal_fsync,
            seq_start=len(replay.records),
            truncate_to=replay.good_bytes,
            metrics=pool.metrics,
        )
        pool.resumed = True
        outcomes = replay.by_job("outcome")
        terminals = replay.by_job("terminal")
        attempts = replay.by_job("attempt")
        for rec in replay.for_kind("admit"):
            spec = JobSpec.from_dict(rec["spec"])
            if spec.job_id in pool._by_id:
                continue  # duplicate admit record; first wins
            index = int(rec.get("index", len(pool._jobs)))
            job_dir = batch_dir / spec.job_id
            job_dir.mkdir(parents=True, exist_ok=True)
            job = _Job(
                index=index,
                spec=spec,
                job_dir=job_dir,
                jitter_rng=pool.retry.rng_for(pool.batch_seed, index),
            )
            pool._jobs.append(job)
            pool._by_id[spec.job_id] = job
            jouts = outcomes.get(spec.job_id, [])
            term = terminals.get(spec.job_id, [])
            status = term[-1].get("status") if term else None
            if status in ("timeout", "exhausted", "quarantined"):
                # a durable terminal failure: reconstruct, never re-run
                summary = term[-1].get("error", "")
                job.result = JobResult(
                    spec=spec,
                    status=status,
                    error=RuntimeError(summary) if summary else None,
                )
                continue
            completed = [o for o in jouts if o.get("outcome") == "completed"]
            if completed:
                loaded = _durable_result(job_dir, completed[-1].get("digest"))
                if loaded is not None:
                    rec_arr, meta = loaded
                    job.result = JobResult(
                        spec=spec,
                        status="completed",
                        receivers=rec_arr,
                        engine=meta.get("engine", ""),
                        fallbacks=meta.get("fallbacks", []),
                    )
                    pool._emit("preloaded", job, digest=True)
                    continue
            # re-admit: journaled failures restore the attempt budget, and
            # the jitter stream is advanced past the draws the dead
            # supervisor consumed, keeping later backoffs deterministic
            failures = [o for o in jouts if o.get("outcome") != "completed"]
            job.attempt_no = len(failures)
            for _ in range(job.attempt_no):
                job.jitter_rng.random()
            for out in reversed(jouts):
                if out.get("outcome") == "crash":
                    job.consecutive_crashes += 1
                else:
                    break
            if len(attempts.get(spec.job_id, [])) > len(jouts):
                # an attempt was in flight when the supervisor died: its
                # checkpoints are on disk, so the retry must resume
                job.force_resume = True
            pool._tenant_active[spec.tenant] = pool._tenant_load(spec.tenant) + 1
            pool._push_ready(job)
            pool._emit(
                "readmitted", job, attempt=job.attempt_no,
                resume=job.force_resume or job.attempt_no > 0,
            )
        pool._journal_append(
            "resume",
            jobs=len(pool._jobs),
            pending=sum(1 for j in pool._jobs if not j.terminal),
            reclaimed_shm=reclaimed,
            corruption=str(replay.corruption) if replay.corruption else None,
        )
        return pool


def run_batch(
    specs: Sequence[JobSpec], workers: int = 4, **kwargs
) -> BatchReport:
    """Submit *specs* to a fresh :class:`JobPool` and drive it to completion."""
    pool = JobPool(workers=workers, **kwargs)
    for spec in specs:
        pool.submit(spec)
    return pool.run()
