"""The warm-worker batch executor: persistent daemons, streaming admission,
retry-from-checkpoint, deadlines, circuit breaking and chaos kills.

One :class:`JobPool` drives one batch.  Jobs are admitted through a bounded
queue — directly (:meth:`submit` with a spec raises
:class:`~repro.errors.QueueSaturatedError` instead of growing memory without
limit) or as a *stream* (:meth:`submit` with an iterator of specs, pulled
lazily as capacity frees, with per-tenant quotas and priority lanes) — then
:meth:`run` supervises up to ``workers`` **long-lived warm daemons**
(:class:`~repro.jobs.warm.WarmWorker`).  Each daemon is preforked once and
serves many jobs over a private pipe, so the process-wide kernel caches and
the per-family ``(tile, height)`` step plans stay warm from job to job, and
the read-only model arrays are attached zero-copy from
:class:`~repro.jobs.shm.SharedArrayRegistry` segments published once per
batch.  Results return over the same pipe; the atomic-file protocol remains
for what it is good at — checkpoints and crash forensics.

Every fault domain of the process-per-attempt design is preserved:

* **crash recovery** — a daemon that dies without reporting (kill signal,
  hard crash) surfaces as a :class:`~repro.errors.WorkerCrashError` on its
  in-flight job; the job is retried on another daemon, resuming from the
  newest snapshot its
  :class:`~repro.runtime.checkpoint.FileCheckpointStore` persisted —
  bit-identical to an uninterrupted run.  The dead daemon is retired and a
  replacement preforked while work remains; its shared-memory mappings die
  with the process and the supervisor's ``finally`` unlinks every segment,
  so nothing leaks into ``/dev/shm``.
* **retries** — daemon-reported faults are retried with exponential backoff
  and per-job seeded jitter (:class:`~repro.jobs.retry.RetryPolicy`) up to
  ``max_attempts``; the terminal
  :class:`~repro.errors.RetryExhaustedError` carries the full history.
* **deadlines** — a job over its total wall-clock budget has its daemon
  SIGKILLed and reports :class:`~repro.errors.JobTimeoutError` without
  disturbing the rest of the pool (a result that raced the kill into the
  pipe still counts); late retries are *degraded* to the naive schedule.
* **circuit breaking** — an optional
  :class:`~repro.jobs.breaker.CircuitBreaker` watches daemon-reported fused
  compile failures; once open, jobs dispatch straight at the next ladder
  rung.
* **chaos** — a :class:`~repro.jobs.chaos.ChaosConfig` arms per-job fault
  injection inside daemons and lets the supervisor SIGKILL the daemon of an
  attempt-0 job right after its first checkpoint lands.

``workers=0`` runs the same job/retry/chaos state machine serially in the
current process (no kills, post-hoc deadlines) with its own
:class:`~repro.jobs.warm.WarmState` — the baseline the benchmark compares
pool throughput against.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from collections import deque
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import (
    JobTimeoutError,
    QueueSaturatedError,
    RetryExhaustedError,
    WorkerCrashError,
)
from .breaker import CircuitBreaker
from .chaos import ChaosConfig, ChaosPlan
from .retry import RetryPolicy
from .spec import AttemptRecord, BatchReport, JobResult, JobSpec
from .warm import WarmState, WarmWorker
from . import worker as worker_mod

__all__ = ["JobPool", "run_batch", "DEFAULT_CAPACITY"]

DEFAULT_CAPACITY = 256


class _Job:
    """Supervisor-side state of one submitted job."""

    def __init__(self, index: int, spec: JobSpec, job_dir: Path, jitter_rng):
        self.index = index
        self.spec = spec
        self.dir = job_dir
        self.jitter_rng = jitter_rng
        self.attempt_no = 0
        self.attempts: List[AttemptRecord] = []
        self.first_started: Optional[float] = None
        self.worker: Optional[WarmWorker] = None
        self.dispatched_engine = ""
        self.result: Optional[JobResult] = None
        self.chaos_killed = False

    @property
    def terminal(self) -> bool:
        return self.result is not None

    def elapsed(self, now: float) -> float:
        return 0.0 if self.first_started is None else now - self.first_started

    def over_deadline(self, now: float) -> bool:
        return (
            self.spec.deadline is not None
            and self.first_started is not None
            and self.elapsed(now) > self.spec.deadline
        )


class _Stream:
    """One lazily-pulled spec iterator with a single-slot hold buffer (a
    pulled spec whose tenant is at quota parks here; the stream stalls —
    bounded memory — until the quota frees)."""

    def __init__(self, specs: Iterable[JobSpec]):
        self.it = iter(specs)
        self.held: Optional[JobSpec] = None
        self.done = False

    def next_spec(self) -> Optional[JobSpec]:
        if self.held is not None:
            spec, self.held = self.held, None
            return spec
        if self.done:
            return None
        try:
            return next(self.it)
        except StopIteration:
            self.done = True
            return None

    @property
    def exhausted(self) -> bool:
        return self.done and self.held is None


def _degrade(spec: JobSpec) -> JobSpec:
    """Deadline-pressure downgrade: run the rest of the budget on the naive
    schedule — minimal precompute, and per-timestep (not per-tile)
    checkpoint granularity, so any further retry loses the least work.
    Numerics are unchanged: all schedules are bit-identical."""
    from dataclasses import replace

    return spec if spec.schedule == "naive" else replace(spec, schedule="naive")


def _resume_step(job_dir: Path) -> Optional[int]:
    """Newest persisted snapshot step, parsed from the filename (the store's
    atomic writes mean a visible file is a complete file)."""
    paths = sorted(Path(job_dir).glob("ckpt/ckpt_*.npz"))
    return int(paths[-1].stem[len("ckpt_"):]) if paths else None


class JobPool:
    """Warm-worker batch executor (see module docstring).

    Parameters
    ----------
    workers:
        Warm daemon slots; ``0`` executes serially in-process.
    capacity:
        Bound on admitted-but-unfinished jobs; a direct :meth:`submit`
        raises :class:`~repro.errors.QueueSaturatedError` beyond it, and
        streams stop being pulled until jobs finish.
    retry:
        Backoff policy (default :class:`~repro.jobs.retry.RetryPolicy`).
    breaker:
        Optional :class:`~repro.jobs.breaker.CircuitBreaker` guarding the
        fused engine across the batch.
    chaos:
        Optional :class:`~repro.jobs.chaos.ChaosConfig`; resolved per job
        from *batch_seed* (scheduling-order independent).
    batch_seed:
        Master seed of every derived substream (faults, jitter, chaos).
    workdir:
        Directory for per-job checkpoint/forensics files; a temporary
        directory (cleaned up after :meth:`run`) when omitted.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` buffer; job lifecycle
        events land in it as ``job.*`` marks, plus per-worker warm/cold
        attempt counters and aggregated kernel/step-cache tallies.
    pressure_fraction:
        Fraction of the deadline a job may burn before retries dispatch
        degraded.
    tenant_quota:
        Optional per-tenant bound on admitted-but-unfinished jobs: a direct
        :meth:`submit` over it raises
        :class:`~repro.errors.QueueSaturatedError`, a stream holding a spec
        of a saturated tenant stalls until the tenant drains.
    """

    def __init__(
        self,
        workers: int = 4,
        capacity: int = DEFAULT_CAPACITY,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        chaos: Optional[ChaosConfig] = None,
        batch_seed: int = 0,
        workdir=None,
        telemetry=None,
        poll_interval: float = 0.02,
        pressure_fraction: float = 0.5,
        start_method: Optional[str] = None,
        tenant_quota: Optional[int] = None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = serial in-process)")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1 (or None)")
        self.workers = int(workers)
        self.capacity = int(capacity)
        self.tenant_quota = tenant_quota
        self.retry = retry or RetryPolicy()
        self.breaker = breaker
        self.chaos_plan = (
            ChaosPlan(chaos, batch_seed) if chaos is not None and chaos.active else None
        )
        self.batch_seed = int(batch_seed)
        self.telemetry = telemetry
        self.poll_interval = float(poll_interval)
        self.pressure_fraction = float(pressure_fraction)
        self._tmp = None
        if workdir is None:
            import tempfile

            self._tmp = tempfile.TemporaryDirectory(prefix="repro-jobs-")
            workdir = self._tmp.name
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._jobs: List[_Job] = []
        self._by_id: Dict[str, _Job] = {}
        self._ready: list = []  # heap of (lane_priority, tiebreak, job)
        self._delayed: list = []  # heap of (ready_time, tiebreak, job)
        self._streams: deque = deque()
        self._tenant_active: Dict[str, int] = {}
        self._seq = 0
        # warm-daemon pool state
        self._pool: List[WarmWorker] = []
        self._worker_seq = 0
        self.workers_spawned = 0
        self._registry = None  # SharedArrayRegistry, created in run()
        self._handles: Dict[str, object] = {}
        self._kills_remaining = (
            self.chaos_plan.config.kill_workers if self.chaos_plan else 0
        )
        self.kills_done = 0
        #: chronological lifecycle events: {"ts", "kind", "job", ...}
        self.events: List[dict] = []
        self._epoch = time.perf_counter()

    # -- admission ---------------------------------------------------------------------
    def _active(self) -> int:
        return sum(1 for j in self._jobs if not j.terminal)

    def _tenant_load(self, tenant: str) -> int:
        return self._tenant_active.get(tenant, 0)

    def submit(self, specs: Union[JobSpec, Iterable[JobSpec]]) -> None:
        """Admit one spec, or register a *stream* of them.

        A single :class:`JobSpec` is admitted immediately —
        :class:`QueueSaturatedError` at capacity (or over the tenant quota)
        is the backpressure signal.  Any other iterable is registered as a
        stream and pulled lazily while :meth:`run` drives the batch: a spec
        is only drawn once there is admission capacity (and tenant quota)
        for it, so an effectively-infinite survey generator runs in bounded
        memory.
        """
        if isinstance(specs, JobSpec):
            self._admit(specs, streamed=False)
            return None
        self._streams.append(_Stream(specs))
        return None

    def _admit(self, spec: JobSpec, streamed: bool) -> None:
        if spec.job_id in self._by_id:
            raise ValueError(f"duplicate job_id {spec.job_id!r}")
        pending = self._active()
        if pending >= self.capacity:
            raise QueueSaturatedError(
                f"admission queue is full ({pending}/{self.capacity}); "
                "drain the pool or shed load",
                capacity=self.capacity,
                pending=pending,
            )
        if (
            self.tenant_quota is not None
            and self._tenant_load(spec.tenant) >= self.tenant_quota
        ):
            raise QueueSaturatedError(
                f"tenant {spec.tenant!r} is at its admission quota "
                f"({self._tenant_load(spec.tenant)}/{self.tenant_quota})",
                capacity=self.tenant_quota,
                pending=self._tenant_load(spec.tenant),
                tenant=spec.tenant,
            )
        job_dir = self.workdir / spec.job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        job = _Job(
            index=len(self._jobs),
            spec=spec,
            job_dir=job_dir,
            jitter_rng=self.retry.rng_for(self.batch_seed, len(self._jobs)),
        )
        self._jobs.append(job)
        self._by_id[spec.job_id] = job
        self._tenant_active[spec.tenant] = self._tenant_load(spec.tenant) + 1
        self._push_ready(job)
        self._emit(
            "queued", job, lane=spec.lane, tenant=spec.tenant, streamed=streamed
        )

    def _push_ready(self, job: _Job) -> None:
        self._seq += 1
        heapq.heappush(self._ready, (job.spec.lane_priority, self._seq, job))

    def _pump_streams(self) -> bool:
        """Pull specs from registered streams while admission allows;
        True if anything was admitted."""
        admitted = False
        while self._streams and self._active() < self.capacity:
            stream: _Stream = self._streams[0]
            spec = stream.next_spec()
            if spec is None:
                self._streams.popleft()
                continue
            if (
                self.tenant_quota is not None
                and self._tenant_load(spec.tenant) >= self.tenant_quota
            ):
                stream.held = spec  # park it; the stream stalls until drain
                break
            self._admit(spec, streamed=True)
            admitted = True
        return admitted

    # -- events ------------------------------------------------------------------------
    def _emit(self, kind: str, job: _Job, **info) -> None:
        self.events.append(
            {
                "ts": time.perf_counter() - self._epoch,
                "kind": kind,
                "job": job.spec.job_id,
                **info,
            }
        )
        if self.telemetry is not None:
            self.telemetry.counters.add(f"jobs_{kind}")
            self.telemetry.event(f"job.{kind}", phase="other", job=job.spec.job_id, **info)

    def _emit_worker(self, kind: str, worker_id: int, **info) -> None:
        self.events.append(
            {
                "ts": time.perf_counter() - self._epoch,
                "kind": kind,
                "job": "",
                "worker": worker_id,
                **info,
            }
        )
        if self.telemetry is not None:
            self.telemetry.counters.add(f"jobs_{kind}")
            self.telemetry.event(f"job.{kind}", phase="other", worker=worker_id, **info)

    # -- terminal transitions ----------------------------------------------------------
    def _finish(self, job: _Job, result: JobResult, kind: str, **info) -> None:
        result.attempts = job.attempts
        result.elapsed = job.elapsed(time.perf_counter())
        job.result = result
        job.worker = None
        self._tenant_active[job.spec.tenant] = max(
            0, self._tenant_load(job.spec.tenant) - 1
        )
        self._emit(kind, job, **info)

    def _complete(self, job: _Job, rec, meta: dict, now: float) -> None:
        record = job.attempts[-1]
        record.ended = now
        record.outcome = "completed"
        record.engine = meta.get("engine", "")
        record.resumed_from = meta.get("resumed_from")
        record.worker = meta.get("worker")
        record.warm = bool(meta.get("warm", False))
        record.phases = dict(meta.get("phases", {}))
        record.caches = dict(meta.get("caches", {}))
        self._count_warmth(record)
        self._breaker_feedback(job, meta)
        self._finish(
            job,
            JobResult(
                spec=job.spec,
                status="completed",
                receivers=rec,
                engine=meta.get("engine", ""),
                fallbacks=meta.get("fallbacks", []),
            ),
            "completed",
            attempts=len(job.attempts),
        )

    def _count_warmth(self, record: AttemptRecord) -> None:
        """Per-worker warm/cold attempt counters plus aggregated cache
        tallies, into the attached telemetry buffer."""
        if self.telemetry is None:
            return
        counters = self.telemetry.counters
        kind = "warm" if record.warm else "cold"
        counters.add(f"jobs_{kind}_attempts")
        if record.worker is not None:
            counters.add(f"worker{record.worker}.jobs")
            counters.add(f"worker{record.worker}.{kind}_attempts")
        for key, n in record.caches.items():
            counters.add(f"jobs_{key}", n)

    def _timeout(self, job: _Job, now: float) -> None:
        if job.attempts and not job.attempts[-1].outcome:
            job.attempts[-1].ended = now
            job.attempts[-1].outcome = "timeout"
        if self.breaker is not None and job.dispatched_engine == self.breaker.engine:
            self.breaker.record_inconclusive(job.dispatched_engine)
        err = JobTimeoutError(
            f"job {job.spec.job_id} exceeded its {job.spec.deadline:.3f}s deadline",
            job_id=job.spec.job_id,
            deadline=job.spec.deadline,
            elapsed=job.elapsed(now),
        )
        self._finish(
            job,
            JobResult(spec=job.spec, status="timeout", error=err),
            "timeout",
            elapsed=job.elapsed(now),
        )

    def _fail_attempt(self, job: _Job, error: BaseException, outcome: str, now: float) -> None:
        record = job.attempts[-1]
        record.ended = now
        record.outcome = outcome
        record.error = f"{type(error).__name__}: {error}"
        if (
            outcome == "crash"
            and self.breaker is not None
            and job.dispatched_engine == self.breaker.engine
        ):
            self.breaker.record_inconclusive(job.dispatched_engine)
        if job.attempt_no + 1 >= job.spec.max_attempts:
            err = RetryExhaustedError(
                f"job {job.spec.job_id} failed all {job.spec.max_attempts} attempt(s); "
                f"last error: {record.error}",
                job_id=job.spec.job_id,
                attempts=[a.to_dict() for a in job.attempts],
            )
            err.__cause__ = error
            self._finish(job, JobResult(spec=job.spec, status="exhausted", error=err),
                         "exhausted", attempts=len(job.attempts))
            return
        job.attempt_no += 1
        delay = self.retry.delay(job.attempt_no, job.jitter_rng)
        self._seq += 1
        heapq.heappush(self._delayed, (now + delay, self._seq, job))
        self._emit("retried", job, attempt=job.attempt_no, delay=delay, error=record.error)

    def _breaker_feedback(self, job: _Job, meta: dict) -> None:
        """Feed daemon-reported engine outcomes into the parent's breaker.

        Multiprocess mode only: in serial mode the breaker rides the engine
        ladder in-process and has already recorded the outcome itself.
        """
        br = self.breaker
        if br is None or self.workers == 0 or job.dispatched_engine != br.engine:
            return
        failed = any(f.get("failed") == br.engine for f in meta.get("fallbacks", ()))
        if failed:
            br.record_failure(br.engine)
        else:
            br.record_success(br.engine)

    # -- warm-daemon pool --------------------------------------------------------------
    def _spawn_worker(self) -> WarmWorker:
        self._worker_seq += 1
        self.workers_spawned += 1
        worker = WarmWorker(self._ctx, self._worker_seq, self._handles)
        self._pool.append(worker)
        self._emit_worker("worker_spawned", worker.worker_id, pid=worker.proc.pid)
        return worker

    def _retire(self, worker: WarmWorker, crashed: bool = False) -> None:
        """Drop *worker* from the pool (its process already dead or being
        killed); shared segments stay valid — only the mapping died."""
        if worker in self._pool:
            self._pool.remove(worker)
        worker.kill()  # no-op if already dead; reaps the process either way
        self._emit_worker(
            "worker_crashed" if crashed else "worker_retired",
            worker.worker_id,
            exitcode=worker.exitcode,
            jobs=worker.jobs_dispatched,
        )

    def _idle_worker(self) -> Optional[WarmWorker]:
        for worker in self._pool:
            if not worker.busy and worker.alive:
                return worker
        if len(self._pool) < self.workers:
            return self._spawn_worker()
        return None

    def _outstanding(self) -> int:
        """Jobs that will still need a daemon (ready + backed off + maybe
        more behind the streams)."""
        n = len(self._ready) + len(self._delayed)
        if any(not s.exhausted for s in self._streams):
            n += 1
        return n

    def _replenish(self) -> None:
        """Prefork replacements for crashed/retired daemons while there is
        work left for them to do."""
        want = min(self.workers, self._outstanding() + sum(w.busy for w in self._pool))
        while len(self._pool) < want:
            self._spawn_worker()

    # -- dispatch ----------------------------------------------------------------------
    def _effective_spec(self, job: _Job, now: float, reroute: bool = True) -> JobSpec:
        spec = job.spec
        degraded = False
        if (
            job.attempt_no > 0
            and spec.deadline is not None
            and job.elapsed(now) > self.pressure_fraction * spec.deadline
        ):
            downgraded = _degrade(spec)
            if downgraded is not spec:
                spec, degraded = downgraded, True
                self._emit("degraded", job, schedule=spec.schedule)
        if (
            reroute
            and self.breaker is not None
            and spec.engine == self.breaker.engine == "fused"
            and not self.breaker.allow("fused")
        ):
            from dataclasses import replace

            spec = replace(spec, engine="kernel")
            degraded = True
            self._emit("rerouted", job, engine="kernel")
        job._degraded = degraded
        return spec

    def _dispatch(self, job: _Job, now: float) -> bool:
        """Hand *job* to an idle warm daemon; False when none is available."""
        worker = self._idle_worker()
        if worker is None:
            return False
        if job.first_started is None:
            job.first_started = now
        spec = self._effective_spec(job, now)
        job.dispatched_engine = spec.engine
        resume = job.attempt_no > 0
        entry = (
            self.chaos_plan.entry(job.index, spec.nt) if self.chaos_plan else None
        )
        job.attempts.append(
            AttemptRecord(
                attempt=job.attempt_no,
                started=now,
                degraded=getattr(job, "_degraded", False),
            )
        )
        step = _resume_step(job.dir) if resume else None
        if step is not None:
            self._emit("resumed", job, step=step, attempt=job.attempt_no)
        try:
            worker.dispatch(spec, str(job.dir), job.attempt_no, resume, entry)
        except (BrokenPipeError, OSError):
            # the daemon died between polls; retire it and try the next one
            self._retire(worker, crashed=True)
            job.attempts.pop()
            if step is not None:
                self.events.pop()  # withdraw the provisional "resumed"
            return self._dispatch(job, now)
        worker.job = job
        job.worker = worker
        self._emit(
            "started", job, attempt=job.attempt_no, engine=spec.engine,
            worker=worker.worker_id,
        )
        return True

    # -- supervision -------------------------------------------------------------------
    def _handle_message(self, worker: WarmWorker, msg, now: float) -> None:
        job = worker.job
        worker.job = None
        kind = msg[0]
        if kind == "ok":
            _, _job_id, _attempt, rec, meta = msg
            self._complete(job, rec, meta, now)
        else:
            _, _job_id, _attempt, error = msg
            self._fail_attempt(job, error, "fault", now)

    def _crash(self, worker: WarmWorker, now: float) -> None:
        """The daemon died with a job in flight and nothing in the pipe."""
        job = worker.job
        worker.job = None
        crash = WorkerCrashError(
            f"worker for job {job.spec.job_id} died without reporting "
            f"(exitcode {worker.exitcode})",
            job_id=job.spec.job_id,
            exitcode=worker.exitcode,
            attempt=job.attempts[-1].attempt,
        )
        self._fail_attempt(job, crash, "crash", now)

    def _chaos_kill(self, now: float) -> None:
        """Deal out pending chaos kills: SIGKILL the daemon of an attempt-0
        job as soon as its first checkpoint is on disk (guaranteeing a
        mid-run kill and a genuine resume on retry)."""
        if self._kills_remaining <= 0:
            return
        busy = sorted(
            (w for w in self._pool if w.busy), key=lambda w: w.job.index
        )
        for worker in busy:
            if self._kills_remaining <= 0:
                break
            job = worker.job
            if job.chaos_killed or job.attempts[-1].attempt != 0:
                continue
            if _resume_step(job.dir) is None:
                continue
            job.chaos_killed = True
            worker.proc.kill()
            self._kills_remaining -= 1
            self.kills_done += 1
            self._emit("killed", job, signal="SIGKILL", worker=worker.worker_id)

    def _poll(self, now: float) -> bool:
        """One supervision sweep; True if any state changed."""
        changed = self._pump_streams()
        self._chaos_kill(now)
        for worker in list(self._pool):
            if not worker.busy:
                if not worker.alive:  # spontaneous death of an idle daemon
                    self._retire(worker, crashed=True)
                    changed = True
                continue
            job = worker.job
            msg = worker.recv_nowait()
            if msg is None and not worker.alive:
                worker.proc.join()
                msg = worker.recv_nowait()  # a result may have raced the death
                if msg is not None:
                    self._handle_message(worker, msg, now)
                else:
                    self._crash(worker, now)
                self._retire(worker, crashed=True)
                changed = True
                continue
            if msg is not None:
                self._handle_message(worker, msg, now)
                changed = True
            elif job.over_deadline(now):
                worker.proc.kill()
                worker.proc.join()
                late = worker.recv_nowait()  # completed in the kill window?
                worker.job = None
                if late is not None and late[0] == "ok":
                    self._complete(job, late[3], late[4], now)
                else:
                    self._timeout(job, now)
                self._retire(worker)
                changed = True
        # promote delayed jobs whose backoff expired (or deadline died waiting)
        while self._delayed and self._delayed[0][0] <= now:
            _, _, job = heapq.heappop(self._delayed)
            if job.over_deadline(now):
                self._timeout(job, now)
            else:
                self._push_ready(job)
            changed = True
        # deadline can also expire while a job waits in backoff
        for _, _, job in list(self._delayed):
            if job.over_deadline(now):
                self._delayed = [(t, s, j) for t, s, j in self._delayed if j is not job]
                heapq.heapify(self._delayed)
                self._timeout(job, now)
                changed = True
        self._replenish()
        while self._ready:
            _, _, job = self._ready[0]
            if not self._dispatch(job, now):
                break
            heapq.heappop(self._ready)
            changed = True
        return changed

    def _busy_conns(self) -> List:
        return [w.conn for w in self._pool if w.busy and w.alive]

    # -- the drive loop ----------------------------------------------------------------
    def run(self) -> BatchReport:
        """Drive every admitted job (and stream) to a terminal state."""
        t0 = time.perf_counter()
        try:
            if self.workers == 0:
                self._run_serial()
            else:
                self._publish_shared()
                # prefork the daemon fleet once, before the first dispatch
                self._replenish()
                while (
                    self._ready
                    or self._delayed
                    or any(w.busy for w in self._pool)
                    or any(not s.exhausted for s in self._streams)
                ):
                    if not self._poll(time.perf_counter()):
                        conns = self._busy_conns()
                        if conns:  # wake on the first daemon report
                            mp_connection.wait(conns, timeout=self.poll_interval)
                        else:
                            time.sleep(self.poll_interval)
        finally:
            for worker in self._pool:  # never leak daemons
                worker.shutdown()
            self._pool.clear()
            if self._registry is not None:  # never leak /dev/shm segments
                self._registry.close()
                self._registry = None
            self._handles = {}
            if self._tmp is not None:
                self._tmp.cleanup()
                self._tmp = None
        wall = time.perf_counter() - t0
        return BatchReport(
            results=[j.result for j in self._jobs],
            wall_seconds=wall,
            events=self.events,
            workers=self.workers,
            kills=self.kills_done,
            workers_spawned=self.workers_spawned,
        )

    def _publish_shared(self) -> None:
        """Publish the batch's read-only model arrays into shared memory
        once; every daemon attaches them zero-copy at prefork."""
        from .shm import SharedArrayRegistry

        if self._registry is not None:
            return
        self._registry = SharedArrayRegistry()
        for key, array in worker_mod.model_arrays().items():
            self._registry.publish(key, array)
        self._handles = self._registry.handles()

    # -- serial (workers=0) ------------------------------------------------------------
    def _run_serial(self) -> None:
        """Same state machine, one job at a time in this process: no kills,
        deadlines enforced post-hoc (an in-process attempt cannot be
        preempted), and the breaker rides the engine ladder directly.  The
        in-process :class:`WarmState` gives the serial executor the same
        cross-job cache warmth a daemon enjoys."""
        warm = WarmState()
        self._pump_streams()
        while self._ready:
            _, _, job = heapq.heappop(self._ready)
            while not job.terminal:
                now = time.perf_counter()
                if job.first_started is None:
                    job.first_started = now
                if job.over_deadline(now):
                    self._timeout(job, now)
                    break
                # no breaker reroute here: the in-process engine ladder
                # consults the breaker itself (Operator._build_sweeps)
                spec = self._effective_spec(job, now, reroute=False)
                job.dispatched_engine = spec.engine
                resume = job.attempt_no > 0
                entry = (
                    self.chaos_plan.entry(job.index, spec.nt)
                    if self.chaos_plan
                    else None
                )
                job.attempts.append(
                    AttemptRecord(
                        attempt=job.attempt_no,
                        started=now,
                        degraded=getattr(job, "_degraded", False),
                    )
                )
                step = _resume_step(job.dir) if resume else None
                if step is not None:
                    self._emit("resumed", job, step=step, attempt=job.attempt_no)
                self._emit("started", job, attempt=job.attempt_no, engine=spec.engine)
                try:
                    rec, meta = worker_mod.execute_attempt(
                        spec,
                        job.dir,
                        attempt=job.attempt_no,
                        resume=resume,
                        chaos=entry,
                        breaker=self.breaker,
                        warm=warm,
                    )
                except Exception as exc:
                    now = time.perf_counter()
                    if job.over_deadline(now):
                        self._timeout(job, now)
                        break
                    self._fail_attempt(job, exc, "fault", now)
                    if not job.terminal and self._delayed:
                        ready_time, _, delayed_job = heapq.heappop(self._delayed)
                        assert delayed_job is job
                        time.sleep(max(0.0, ready_time - time.perf_counter()))
                    continue
                now = time.perf_counter()
                if job.over_deadline(now):
                    self._timeout(job, now)
                else:
                    self._complete(job, rec, meta, now)
            self._pump_streams()


def run_batch(
    specs: Sequence[JobSpec], workers: int = 4, **kwargs
) -> BatchReport:
    """Submit *specs* to a fresh :class:`JobPool` and drive it to completion."""
    pool = JobPool(workers=workers, **kwargs)
    for spec in specs:
        pool.submit(spec)
    return pool.run()
