"""The resilient batch executor: bounded admission, worker supervision,
retry-from-checkpoint, deadlines, circuit breaking and chaos kills.

One :class:`JobPool` drives one batch.  Jobs are admitted through a bounded
queue (:meth:`submit` raises :class:`~repro.errors.QueueSaturatedError`
instead of growing memory without limit), then :meth:`run` supervises up to
``workers`` concurrent worker *processes* — one process per attempt, so a
SIGKILLed or hung worker takes down nothing but its own attempt:

* **crash recovery** — a worker that dies without reporting (kill signal,
  hard crash) becomes a :class:`~repro.errors.WorkerCrashError`; the job is
  retried on a fresh process, resuming from the newest snapshot its
  :class:`~repro.runtime.checkpoint.FileCheckpointStore` persisted (atomic
  writes guarantee the supervisor never sees a partial snapshot).  Restart
  is bit-identical, so a killed-and-resumed job produces exactly the
  receivers of an uninterrupted run.
* **retries** — worker-reported faults (injected faults, blowups, ...) are
  retried with exponential backoff and per-job seeded jitter
  (:class:`~repro.jobs.retry.RetryPolicy`) up to ``max_attempts``; the
  terminal :class:`~repro.errors.RetryExhaustedError` carries the full
  attempt history.
* **deadlines** — a job that exceeds its total wall-clock budget is
  SIGKILLed and reported as :class:`~repro.errors.JobTimeoutError` without
  disturbing the rest of the pool; a retry dispatched after most of the
  budget is burned is *degraded* (schedule downgraded to ``naive``, whose
  every-timestep checkpoints also minimise lost work on any further retry).
* **circuit breaking** — an optional
  :class:`~repro.jobs.breaker.CircuitBreaker` watches worker-reported fused
  compile failures; once open, jobs are dispatched straight at the next
  ladder rung instead of paying the failure cost per job.
* **chaos** — a :class:`~repro.jobs.chaos.ChaosConfig` arms per-job fault
  injection inside workers and lets the supervisor SIGKILL attempt-0
  workers right after their first checkpoint lands.

``workers=0`` runs the same job/retry/chaos state machine serially in the
current process (no kills, post-hoc deadlines) — the baseline the benchmark
compares pool throughput against.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import (
    JobTimeoutError,
    QueueSaturatedError,
    RetryExhaustedError,
    WorkerCrashError,
)
from .breaker import CircuitBreaker
from .chaos import ChaosConfig, ChaosPlan
from .retry import RetryPolicy
from .spec import AttemptRecord, BatchReport, JobResult, JobSpec
from . import worker as worker_mod

__all__ = ["JobPool", "run_batch", "DEFAULT_CAPACITY"]

DEFAULT_CAPACITY = 256


class _Job:
    """Supervisor-side state of one submitted job."""

    def __init__(self, index: int, spec: JobSpec, job_dir: Path, jitter_rng):
        self.index = index
        self.spec = spec
        self.dir = job_dir
        self.jitter_rng = jitter_rng
        self.attempt_no = 0
        self.attempts: List[AttemptRecord] = []
        self.first_started: Optional[float] = None
        self.proc = None
        self.dispatched_engine = ""
        self.result: Optional[JobResult] = None
        self.chaos_killed = False

    @property
    def terminal(self) -> bool:
        return self.result is not None

    def elapsed(self, now: float) -> float:
        return 0.0 if self.first_started is None else now - self.first_started

    def over_deadline(self, now: float) -> bool:
        return (
            self.spec.deadline is not None
            and self.first_started is not None
            and self.elapsed(now) > self.spec.deadline
        )


def _degrade(spec: JobSpec) -> JobSpec:
    """Deadline-pressure downgrade: run the rest of the budget on the naive
    schedule — minimal precompute, and per-timestep (not per-tile)
    checkpoint granularity, so any further retry loses the least work.
    Numerics are unchanged: all schedules are bit-identical."""
    from dataclasses import replace

    return spec if spec.schedule == "naive" else replace(spec, schedule="naive")


def _resume_step(job_dir: Path) -> Optional[int]:
    """Newest persisted snapshot step, parsed from the filename (the store's
    atomic writes mean a visible file is a complete file)."""
    paths = sorted(Path(job_dir).glob("ckpt/ckpt_*.npz"))
    return int(paths[-1].stem[len("ckpt_"):]) if paths else None


class JobPool:
    """Resilient multiprocess batch executor (see module docstring).

    Parameters
    ----------
    workers:
        Concurrent worker processes; ``0`` executes serially in-process.
    capacity:
        Bound on admitted-but-unfinished jobs; :meth:`submit` raises
        :class:`~repro.errors.QueueSaturatedError` beyond it.
    retry:
        Backoff policy (default :class:`~repro.jobs.retry.RetryPolicy`).
    breaker:
        Optional :class:`~repro.jobs.breaker.CircuitBreaker` guarding the
        fused engine across the batch.
    chaos:
        Optional :class:`~repro.jobs.chaos.ChaosConfig`; resolved per job
        from *batch_seed* (scheduling-order independent).
    batch_seed:
        Master seed of every derived substream (faults, jitter, chaos).
    workdir:
        Directory for per-job checkpoint/result files; a temporary
        directory (cleaned up after :meth:`run`) when omitted.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` buffer; job lifecycle
        events land in it as ``job.*`` marks.
    pressure_fraction:
        Fraction of the deadline a job may burn before retries dispatch
        degraded.
    """

    def __init__(
        self,
        workers: int = 4,
        capacity: int = DEFAULT_CAPACITY,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        chaos: Optional[ChaosConfig] = None,
        batch_seed: int = 0,
        workdir=None,
        telemetry=None,
        poll_interval: float = 0.02,
        pressure_fraction: float = 0.5,
        start_method: Optional[str] = None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = serial in-process)")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.workers = int(workers)
        self.capacity = int(capacity)
        self.retry = retry or RetryPolicy()
        self.breaker = breaker
        self.chaos_plan = (
            ChaosPlan(chaos, batch_seed) if chaos is not None and chaos.active else None
        )
        self.batch_seed = int(batch_seed)
        self.telemetry = telemetry
        self.poll_interval = float(poll_interval)
        self.pressure_fraction = float(pressure_fraction)
        self._tmp = None
        if workdir is None:
            import tempfile

            self._tmp = tempfile.TemporaryDirectory(prefix="repro-jobs-")
            workdir = self._tmp.name
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._jobs: List[_Job] = []
        self._by_id: Dict[str, _Job] = {}
        self._ready: deque = deque()
        self._delayed: list = []  # heap of (ready_time, tiebreak, job)
        self._running: List[_Job] = []
        self._seq = 0
        self._kills_remaining = (
            self.chaos_plan.config.kill_workers if self.chaos_plan else 0
        )
        self.kills_done = 0
        #: chronological lifecycle events: {"ts", "kind", "job", ...}
        self.events: List[dict] = []
        self._epoch = time.perf_counter()

    # -- admission ---------------------------------------------------------------------
    def _active(self) -> int:
        return sum(1 for j in self._jobs if not j.terminal)

    def submit(self, spec: JobSpec) -> None:
        """Admit *spec*; raises :class:`QueueSaturatedError` at capacity."""
        if spec.job_id in self._by_id:
            raise ValueError(f"duplicate job_id {spec.job_id!r}")
        pending = self._active()
        if pending >= self.capacity:
            raise QueueSaturatedError(
                f"admission queue is full ({pending}/{self.capacity}); "
                "drain the pool or shed load",
                capacity=self.capacity,
                pending=pending,
            )
        job_dir = self.workdir / spec.job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        job = _Job(
            index=len(self._jobs),
            spec=spec,
            job_dir=job_dir,
            jitter_rng=self.retry.rng_for(self.batch_seed, len(self._jobs)),
        )
        self._jobs.append(job)
        self._by_id[spec.job_id] = job
        self._ready.append(job)
        self._emit("queued", job)
        return None

    # -- events ------------------------------------------------------------------------
    def _emit(self, kind: str, job: _Job, **info) -> None:
        self.events.append(
            {
                "ts": time.perf_counter() - self._epoch,
                "kind": kind,
                "job": job.spec.job_id,
                **info,
            }
        )
        if self.telemetry is not None:
            self.telemetry.counters.add(f"jobs_{kind}")
            self.telemetry.event(f"job.{kind}", phase="other", job=job.spec.job_id, **info)

    # -- terminal transitions ----------------------------------------------------------
    def _finish(self, job: _Job, result: JobResult, kind: str, **info) -> None:
        result.attempts = job.attempts
        result.elapsed = job.elapsed(time.perf_counter())
        job.result = result
        job.proc = None
        self._emit(kind, job, **info)

    def _complete(self, job: _Job, rec, meta: dict, now: float) -> None:
        record = job.attempts[-1]
        record.ended = now
        record.outcome = "completed"
        record.engine = meta.get("engine", "")
        record.resumed_from = meta.get("resumed_from")
        self._breaker_feedback(job, meta)
        self._finish(
            job,
            JobResult(
                spec=job.spec,
                status="completed",
                receivers=rec,
                engine=meta.get("engine", ""),
                fallbacks=meta.get("fallbacks", []),
            ),
            "completed",
            attempts=len(job.attempts),
        )

    def _timeout(self, job: _Job, now: float) -> None:
        if job.attempts and not job.attempts[-1].outcome:
            job.attempts[-1].ended = now
            job.attempts[-1].outcome = "timeout"
        if self.breaker is not None and job.dispatched_engine == self.breaker.engine:
            self.breaker.record_inconclusive(job.dispatched_engine)
        err = JobTimeoutError(
            f"job {job.spec.job_id} exceeded its {job.spec.deadline:.3f}s deadline",
            job_id=job.spec.job_id,
            deadline=job.spec.deadline,
            elapsed=job.elapsed(now),
        )
        self._finish(
            job,
            JobResult(spec=job.spec, status="timeout", error=err),
            "timeout",
            elapsed=job.elapsed(now),
        )

    def _fail_attempt(self, job: _Job, error: BaseException, outcome: str, now: float) -> None:
        record = job.attempts[-1]
        record.ended = now
        record.outcome = outcome
        record.error = f"{type(error).__name__}: {error}"
        if (
            outcome == "crash"
            and self.breaker is not None
            and job.dispatched_engine == self.breaker.engine
        ):
            self.breaker.record_inconclusive(job.dispatched_engine)
        if job.attempt_no + 1 >= job.spec.max_attempts:
            err = RetryExhaustedError(
                f"job {job.spec.job_id} failed all {job.spec.max_attempts} attempt(s); "
                f"last error: {record.error}",
                job_id=job.spec.job_id,
                attempts=[a.to_dict() for a in job.attempts],
            )
            err.__cause__ = error
            self._finish(job, JobResult(spec=job.spec, status="exhausted", error=err),
                         "exhausted", attempts=len(job.attempts))
            return
        job.attempt_no += 1
        delay = self.retry.delay(job.attempt_no, job.jitter_rng)
        self._seq += 1
        heapq.heappush(self._delayed, (now + delay, self._seq, job))
        self._emit("retried", job, attempt=job.attempt_no, delay=delay, error=record.error)

    def _breaker_feedback(self, job: _Job, meta: dict) -> None:
        """Feed worker-reported engine outcomes into the parent's breaker.

        Multiprocess mode only: in serial mode the breaker rides the engine
        ladder in-process and has already recorded the outcome itself.
        """
        br = self.breaker
        if br is None or self.workers == 0 or job.dispatched_engine != br.engine:
            return
        failed = any(f.get("failed") == br.engine for f in meta.get("fallbacks", ()))
        if failed:
            br.record_failure(br.engine)
        else:
            br.record_success(br.engine)

    # -- dispatch ----------------------------------------------------------------------
    def _effective_spec(self, job: _Job, now: float, reroute: bool = True) -> JobSpec:
        spec = job.spec
        degraded = False
        if (
            job.attempt_no > 0
            and spec.deadline is not None
            and job.elapsed(now) > self.pressure_fraction * spec.deadline
        ):
            downgraded = _degrade(spec)
            if downgraded is not spec:
                spec, degraded = downgraded, True
                self._emit("degraded", job, schedule=spec.schedule)
        if (
            reroute
            and self.breaker is not None
            and spec.engine == self.breaker.engine == "fused"
            and not self.breaker.allow("fused")
        ):
            from dataclasses import replace

            spec = replace(spec, engine="kernel")
            degraded = True
            self._emit("rerouted", job, engine="kernel")
        job._degraded = degraded
        return spec

    def _dispatch(self, job: _Job, now: float) -> None:
        if job.first_started is None:
            job.first_started = now
        spec = self._effective_spec(job, now)
        job.dispatched_engine = spec.engine
        resume = job.attempt_no > 0
        entry = (
            self.chaos_plan.entry(job.index, spec.nt) if self.chaos_plan else None
        )
        job.attempts.append(
            AttemptRecord(
                attempt=job.attempt_no,
                started=now,
                degraded=getattr(job, "_degraded", False),
            )
        )
        step = _resume_step(job.dir) if resume else None
        if step is not None:
            self._emit("resumed", job, step=step, attempt=job.attempt_no)
        job.proc = self._ctx.Process(
            target=worker_mod.child_main,
            args=(spec, str(job.dir), job.attempt_no, resume, entry),
            daemon=True,
        )
        job.proc.start()
        self._running.append(job)
        self._emit("started", job, attempt=job.attempt_no, engine=spec.engine)

    # -- supervision -------------------------------------------------------------------
    def _reap(self, job: _Job, now: float) -> None:
        """The worker exited: read its report (result file is authoritative
        even on a nonzero exit — it is written atomically before exit)."""
        exitcode = job.proc.exitcode
        job.proc.join()
        res = worker_mod.read_result(job.dir)
        if res is not None:
            rec, meta = res
            self._complete(job, rec, meta, now)
            return
        error = worker_mod.read_error(job.dir, job.attempts[-1].attempt)
        if error is not None:
            self._fail_attempt(job, error, "fault", now)
            return
        crash = WorkerCrashError(
            f"worker for job {job.spec.job_id} died without reporting "
            f"(exitcode {exitcode})",
            job_id=job.spec.job_id,
            exitcode=exitcode,
            attempt=job.attempts[-1].attempt,
        )
        self._fail_attempt(job, crash, "crash", now)

    def _chaos_kill(self, now: float) -> None:
        """Deal out pending chaos kills: SIGKILL an attempt-0 worker as soon
        as its first checkpoint is on disk (guaranteeing a mid-run kill and
        a genuine resume on retry)."""
        if self._kills_remaining <= 0:
            return
        for job in sorted(self._running, key=lambda j: j.index):
            if self._kills_remaining <= 0:
                break
            if job.chaos_killed or job.attempts[-1].attempt != 0:
                continue
            if _resume_step(job.dir) is None:
                continue
            job.chaos_killed = True
            job.proc.kill()
            self._kills_remaining -= 1
            self.kills_done += 1
            self._emit("killed", job, signal="SIGKILL")

    def _poll(self, now: float) -> bool:
        """One supervision sweep; True if any state changed."""
        changed = False
        still_running: List[_Job] = []
        self._chaos_kill(now)
        for job in self._running:
            if job.proc.exitcode is not None or not job.proc.is_alive():
                self._reap(job, now)
                changed = True
            elif job.over_deadline(now):
                job.proc.kill()
                job.proc.join()
                # the worker may have completed in the kill window
                res = worker_mod.read_result(job.dir)
                if res is not None:
                    self._complete(job, res[0], res[1], now)
                else:
                    self._timeout(job, now)
                changed = True
            else:
                still_running.append(job)
        self._running = still_running
        # promote delayed jobs whose backoff expired (or deadline died waiting)
        while self._delayed and self._delayed[0][0] <= now:
            _, _, job = heapq.heappop(self._delayed)
            if job.over_deadline(now):
                self._timeout(job, now)
            else:
                self._ready.append(job)
            changed = True
        # deadline can also expire while a job waits in backoff
        for _, _, job in list(self._delayed):
            if job.over_deadline(now):
                self._delayed = [(t, s, j) for t, s, j in self._delayed if j is not job]
                heapq.heapify(self._delayed)
                self._timeout(job, now)
                changed = True
        while self._ready and len(self._running) < self.workers:
            self._dispatch(self._ready.popleft(), now)
            changed = True
        return changed

    # -- the drive loop ----------------------------------------------------------------
    def run(self) -> BatchReport:
        """Drive every admitted job to a terminal state; returns the report."""
        t0 = time.perf_counter()
        try:
            if self.workers == 0:
                self._run_serial()
            else:
                while self._ready or self._delayed or self._running:
                    if not self._poll(time.perf_counter()):
                        time.sleep(self.poll_interval)
        finally:
            for job in self._running:  # never leak workers
                if job.proc is not None and job.proc.is_alive():
                    job.proc.kill()
                    job.proc.join()
            if self._tmp is not None:
                self._tmp.cleanup()
                self._tmp = None
        wall = time.perf_counter() - t0
        return BatchReport(
            results=[j.result for j in self._jobs],
            wall_seconds=wall,
            events=self.events,
            workers=self.workers,
            kills=self.kills_done,
        )

    # -- serial (workers=0) ------------------------------------------------------------
    def _run_serial(self) -> None:
        """Same state machine, one job at a time in this process: no kills,
        deadlines enforced post-hoc (an in-process attempt cannot be
        preempted), and the breaker rides the engine ladder directly."""
        while self._ready:
            job = self._ready.popleft()
            while not job.terminal:
                now = time.perf_counter()
                if job.first_started is None:
                    job.first_started = now
                if job.over_deadline(now):
                    self._timeout(job, now)
                    break
                # no breaker reroute here: the in-process engine ladder
                # consults the breaker itself (Operator._build_sweeps)
                spec = self._effective_spec(job, now, reroute=False)
                job.dispatched_engine = spec.engine
                resume = job.attempt_no > 0
                entry = (
                    self.chaos_plan.entry(job.index, spec.nt)
                    if self.chaos_plan
                    else None
                )
                job.attempts.append(
                    AttemptRecord(
                        attempt=job.attempt_no,
                        started=now,
                        degraded=getattr(job, "_degraded", False),
                    )
                )
                step = _resume_step(job.dir) if resume else None
                if step is not None:
                    self._emit("resumed", job, step=step, attempt=job.attempt_no)
                self._emit("started", job, attempt=job.attempt_no, engine=spec.engine)
                try:
                    rec, meta = worker_mod.execute_attempt(
                        spec,
                        job.dir,
                        attempt=job.attempt_no,
                        resume=resume,
                        chaos=entry,
                        breaker=self.breaker,
                    )
                except Exception as exc:
                    now = time.perf_counter()
                    if job.over_deadline(now):
                        self._timeout(job, now)
                        break
                    self._fail_attempt(job, exc, "fault", now)
                    if not job.terminal and self._delayed:
                        ready_time, _, delayed_job = heapq.heappop(self._delayed)
                        assert delayed_job is job
                        time.sleep(max(0.0, ready_time - time.perf_counter()))
                    continue
                now = time.perf_counter()
                if job.over_deadline(now):
                    self._timeout(job, now)
                else:
                    self._complete(job, rec, meta, now)


def run_batch(specs: Sequence[JobSpec], workers: int = 4, **kwargs) -> BatchReport:
    """Submit *specs* to a fresh :class:`JobPool` and drive it to completion."""
    pool = JobPool(workers=workers, **kwargs)
    for spec in specs:
        pool.submit(spec)
    return pool.run()
