"""Resilient batch execution of many propagation jobs.

The ROADMAP's production-scale story needs surveys — batches of hundreds of
independent source experiments — to survive the faults a single in-process
``forward()`` cannot: a hung compile, a NaN seed, a killed process.  This
package orchestrates such batches over a pool of long-lived **warm worker
daemons** — preforked once per batch, dispatched over private pipes,
keeping kernel and step-plan caches hot across jobs and attaching the
read-only model arrays zero-copy from shared memory — and guarantees
forward progress under faults, building directly on the runtime resilience
layer (checkpoint/restart, fault injection, the engine degradation ladder)
and telemetry::

    from repro.jobs import JobSpec, run_batch

    specs = [JobSpec(f"shot-{i:03d}", example="acoustic", nt=64, seed=i)
             for i in range(16)]
    report = run_batch(specs, workers=4)
    assert report.ok            # zero lost jobs
    report.results[0].receivers # bit-identical to a fault-free serial run

Streaming admission takes a lazy iterator of specs (pulled only as capacity
frees, per-tenant quotas, ``interactive``/``batch``/``bulk`` priority
lanes)::

    pool = JobPool(workers=4, tenant_quota=8)
    pool.submit(spec_generator())   # any non-JobSpec iterable is a stream
    report = pool.run()

The batch itself is crash-safe: every state transition is write-ahead
journaled (``journal.jsonl`` in the batch workdir, fsynced, SHA-256
trailers), so a supervisor killed mid-batch — OOM, SIGKILL, power — is
resumable bit-identically::

    pool = JobPool.resume("path/to/batchdir")   # or: --resume on the CLI
    report = pool.run()
    assert report.resumed and report.ok

SIGTERM/SIGINT drain gracefully (in-flight attempts finish, the rest is
journaled ``interrupted`` and resumable); livelocked daemons are detected
by heartbeat silence and replaced; poison jobs that crash every daemon are
quarantined with forensics instead of retried forever.

The whole service is observable end to end: the supervisor records into a
:class:`~repro.telemetry.metrics.MetricsRegistry` (queue depths per lane,
admission waits, attempt latencies, breaker state, journal fsync cost —
snapshottable as JSON or Prometheus text, servable with ``--metrics-port``),
atomically refreshes a live ``metrics.json`` in the batch dir that
``python -m repro.jobs.status BATCH_DIR`` renders, and with ``trace=True``
propagates a trace context to every attempt so the per-attempt span trees
come back clock-corrected and merge into one batch-wide Chrome trace
(``--trace`` on the CLI, :func:`repro.telemetry.merge.merge_batch_trace`
in code).

Command line: ``python -m repro.jobs --help`` (chaos knobs included).
"""

from .breaker import CircuitBreaker
from .chaos import ChaosConfig, ChaosEntry, ChaosPlan
from .journal import JOURNAL_NAME, BatchJournal, JournalReplay, load_journal
from .pool import DEFAULT_CAPACITY, METRICS_NAME, PROM_NAME, JobPool, run_batch
from .retry import RetryPolicy
from .shm import SharedArrayHandle, SharedArrayRegistry, attach_array
from .spec import (
    EXAMPLES,
    JOB_ENGINES,
    LANES,
    PHASE_KEYS,
    SCHEDULES,
    STATUSES,
    AttemptRecord,
    BatchReport,
    JobResult,
    JobSpec,
)
from .warm import WarmState, WarmWorker
from .worker import build_problem, execute_attempt, model_arrays, run_job_inline

__all__ = [
    "JobSpec",
    "AttemptRecord",
    "JobResult",
    "BatchReport",
    "JobPool",
    "run_batch",
    "RetryPolicy",
    "CircuitBreaker",
    "ChaosConfig",
    "ChaosEntry",
    "ChaosPlan",
    "SharedArrayHandle",
    "SharedArrayRegistry",
    "attach_array",
    "BatchJournal",
    "JournalReplay",
    "load_journal",
    "JOURNAL_NAME",
    "WarmState",
    "WarmWorker",
    "build_problem",
    "execute_attempt",
    "model_arrays",
    "run_job_inline",
    "EXAMPLES",
    "SCHEDULES",
    "JOB_ENGINES",
    "STATUSES",
    "LANES",
    "PHASE_KEYS",
    "DEFAULT_CAPACITY",
    "METRICS_NAME",
    "PROM_NAME",
]
