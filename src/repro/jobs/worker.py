"""Worker side of the batch-execution service.

:func:`build_problem` turns a :class:`~repro.jobs.spec.JobSpec` into a live
propagator — the paper's small verification grid with the spec's seed
perturbing the source position, so a batch is a survey of distinct shots
and every attempt (or fault-free re-run) of the same spec rebuilds the
identical problem.

:func:`execute_attempt` is the in-process core shared by pool workers and
the serial (``workers=0``) executor: it wires the job's private
:class:`~repro.runtime.checkpoint.FileCheckpointStore` under the job
directory (resuming from the newest snapshot on retries), arms the chaos
entry's fault injector / broken compiler on attempt 0, and runs
``Propagator.forward`` under telemetry so the attempt can report which
engine actually executed and what fell back.

:func:`child_main` wraps that core for a worker *process*: the result is
written as ``result.npz`` and failures as pickled exceptions — both via
atomic temp-file + ``os.replace`` so a SIGKILL can never leave a partial
file for the supervisor to misread.  A dead-silent worker (no result, no
error file) is the supervisor's cue to synthesise
:class:`~repro.errors.WorkerCrashError`.
"""

from __future__ import annotations

import json
import os
import pickle
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from ..errors import CheckpointCorruptError
from ..runtime.abft import ABFTGuard
from ..runtime.checkpoint import CheckpointConfig, FileCheckpointStore
from ..runtime.faults import Fault, FaultInjector, break_engine
from ..runtime.health import HealthGuard
from .chaos import ChaosEntry
from .spec import JobSpec

__all__ = [
    "build_problem",
    "make_schedule",
    "execute_attempt",
    "run_job_inline",
    "child_main",
    "read_result",
    "read_error",
    "write_error",
    "model_arrays",
]

#: the small verification grid every job runs on (mirrors repro.lint)
SHAPE, NBL, SPACE_ORDER = (12, 12, 12), 2, 4
NRECEIVERS = 4

#: registry key of the shared velocity model (see :func:`model_arrays`)
VP_KEY = "model/vp"


def model_arrays() -> dict:
    """The read-only model arrays every job of a batch shares, by registry
    key.  The pool publishes these into shared memory once per batch;
    :func:`build_problem` falls back to computing them locally (bit-identical
    by construction) when no shared registry is attached."""
    from ..propagators import layered_velocity

    return {VP_KEY: layered_velocity(SHAPE, 1.5, 3.0, 3)}


def make_schedule(kind: str):
    from ..core.scheduler import NaiveSchedule, SpatialBlockSchedule, WavefrontSchedule

    if kind == "naive":
        return NaiveSchedule()
    if kind == "spatial":
        return SpatialBlockSchedule(block=(6, 6))
    return WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2)


def build_problem(spec: JobSpec, shared=None):
    """(propagator, dt) for *spec* — deterministic in the spec alone.

    *shared* optionally maps registry keys to zero-copy read-only arrays
    (a warm worker's shared-memory attachments); absent keys are computed
    locally, producing bit-identical values by construction.
    """
    from ..propagators import (
        AcousticPropagator,
        ElasticPropagator,
        SeismicModel,
        TTIPropagator,
        layered_velocity,
        point_source,
        receiver_line,
    )

    vp = shared.get(VP_KEY) if shared else None
    if vp is None:
        vp = layered_velocity(SHAPE, 1.5, 3.0, 3)
    kwargs = {}
    if spec.example == "tti":
        kwargs = dict(epsilon=0.12, delta=0.05, theta=0.35, phi=0.4)
    elif spec.example == "elastic":
        kwargs = dict(rho=1.8, vs=vp / 1.8)
    spacing = 20.0 if spec.example == "tti" else 10.0
    model = SeismicModel(
        SHAPE, (spacing,) * 3, vp, nbl=NBL, space_order=SPACE_ORDER, **kwargs
    )
    cls = {
        "acoustic": AcousticPropagator,
        "tti": TTIPropagator,
        "elastic": ElasticPropagator,
    }[spec.example]
    dt = model.critical_dt(spec.example)
    center = np.asarray(model.domain_center, dtype=float)
    extent = np.asarray(model.grid.extent, dtype=float)
    # the seed shifts the shot within the middle [0.3, 0.7] of the domain
    rng = np.random.default_rng(spec.seed)
    coords = center + rng.uniform(-0.2, 0.2, size=len(extent)) * extent
    src = point_source("src", model.grid, spec.nt, coords, f0=0.015, dt=dt)
    rec = receiver_line("rec", model.grid, spec.nt, npoint=NRECEIVERS, depth=center[-1])
    prop = cls(model, space_order=SPACE_ORDER, source=src, receivers=rec)
    return prop, dt


def _checkpoint_dir(job_dir: Path) -> Path:
    return Path(job_dir) / "ckpt"


def execute_attempt(
    spec: JobSpec,
    job_dir,
    attempt: int = 0,
    resume: bool = False,
    chaos: Optional[ChaosEntry] = None,
    breaker=None,
    warm=None,
    trace: bool = False,
    ctx: Optional[dict] = None,
    distrust_shm: bool = False,
) -> Tuple[Optional[np.ndarray], dict]:
    """Run one attempt of *spec* in the current process.

    Returns ``(receivers, meta)``; raises whatever the run raises
    (InjectedFault, NumericalBlowup, ...) — classification is the caller's
    business.  A corrupt checkpoint is *not* fatal: the store is discarded
    and the attempt restarts from scratch, preserving forward progress.

    *distrust_shm* makes :func:`build_problem` ignore the warm worker's
    shared-memory attachments and recompute the model arrays locally
    (bit-identical by construction) — the pool sets it on retries after a
    silent-data-corruption outcome, so a corrupted ``/dev/shm`` segment
    costs one attempt, not the job.

    *warm* is an optional :class:`~repro.jobs.warm.WarmState`: its shared
    arrays feed :func:`build_problem` zero-copy, its family step cache lets
    the wavefront tile geometry persist across jobs, and the meta gains the
    warm/cold attribution (worker id, warmth flag, per-phase seconds, cache
    hit/miss tallies) the pool's benchmark and telemetry report.

    With *trace* on, the attempt's whole telemetry buffer is serialized
    (:func:`repro.telemetry.merge.telemetry_payload`) into
    ``meta["telemetry"]`` under the identity in *ctx* (job, attempt,
    worker, plus the pipe-handshake clock stamps) so the supervisor can
    stitch it into the batch-wide trace.
    """
    import time as _time

    t_entry = _time.perf_counter()
    job_dir = Path(job_dir)
    shared = None if distrust_shm else (warm.shared if warm else None)
    prop, dt = build_problem(spec, shared=shared)
    store = FileCheckpointStore(_checkpoint_dir(job_dir), keep=2)
    resumed_from = None
    if resume:
        try:
            snapshot = store.latest()
            resumed_from = snapshot.step if snapshot is not None else None
        except CheckpointCorruptError:
            store.clear()
    checkpoint = CheckpointConfig(
        every=spec.checkpoint_every, store=store, resume=resumed_from is not None
    )
    faults = health = abft = None
    engine_ctx = nullcontext()
    if chaos is not None and attempt == 0:
        if chaos.fault is not None:
            faults = FaultInjector([Fault(**chaos.fault)], seed=chaos.fault_seed)
            if chaos.needs_guard:
                health = HealthGuard(check_every=1)
            elif chaos.needs_abft:
                # a finite bit-flip is invisible to the NaN/Inf guard (and
                # arming one here would misclassify the violation as a plain
                # blow-up): only the ABFT amplitude invariant catches it, and
                # its micro-snapshots recover the tile in-run
                abft = ABFTGuard()
        if chaos.break_fused and spec.engine == "fused":
            engine_ctx = break_engine("fused")
    from ..telemetry import Telemetry

    telemetry = Telemetry()
    with engine_ctx:
        rec, plan = prop.forward(
            nt=spec.nt,
            dt=dt,
            schedule=make_schedule(spec.schedule),
            engine=spec.engine,
            checkpoint=checkpoint,
            faults=faults,
            health=health,
            abft=abft,
            telemetry=telemetry,
            breaker=breaker,
            step_cache=warm.step_cache(spec) if warm else None,
        )
    t_after = _time.perf_counter()
    fallbacks = [
        {"failed": ev.attrs.get("failed"), "degraded_to": ev.attrs.get("degraded_to")}
        for ev in telemetry.events
        if ev.name == "engine.fallback"
    ]
    ph = telemetry.phase_seconds
    counters = telemetry.counters
    # attribute the attempt's bookends so the batch wall reconciles:
    # problem construction + store wiring (before the forward's telemetry
    # starts) is compile-class work; anything after the root span closed
    # (result marshalling) is io-class
    setup = max(0.0, (telemetry.epoch or t_after) - t_entry)
    root = telemetry.root_span()
    tail = 0.0
    if root is not None:
        tail = max(0.0, t_after - (root.start + root.dur))
    meta = {
        "engine": plan.sweeps[0].engine,
        "fallbacks": fallbacks,
        "resumed_from": resumed_from,
        "attempt": attempt,
        "checkpoint_saves": int(counters["checkpoint_saves"]),
        # warm/cold attribution: which daemon ran it, whether its caches
        # were already hot, where the attempt's time went, and what the
        # kernel/step caches did (spawn latency is stamped by the daemon)
        "worker": warm.worker_id if warm else None,
        "warm": bool(warm and warm.jobs_done > 0),
        "phases": {
            "compile": ph.get("precompute", 0.0) + setup,
            "compute": (
                ph.get("stencil", 0.0)
                + ph.get("injection", 0.0)
                + ph.get("receivers", 0.0)
                + ph.get("other", 0.0)
            ),
            "io": ph.get("checkpoint+guard", 0.0) + tail,
        },
        "caches": {
            "kernel_hits": int(counters["kernel_cache_hits"]),
            "kernel_misses": int(counters["kernel_cache_misses"]),
            "step_hits": int(counters["step_cache_hits"]),
            "step_misses": int(counters["step_cache_misses"]),
        },
        # raw per-phase seconds + work counters: the metrics registry's
        # GPts/s feed (always cheap — a handful of floats)
        "phase_seconds": {k: v for k, v in ph.items() if v},
        "work": {
            "points_updated": int(counters["points_updated"]),
            "stencil_seconds": ph.get("stencil", 0.0),
        },
    }
    if abft is not None:
        # detections recovered in-run leave the outcome "completed" but must
        # still surface: the pool journals an "sdc" audit record from these
        meta["abft"] = abft.describe()
    if faults is not None and faults.flips:
        # bit-flip forensics: exactly where the injected corruption landed
        meta["flips"] = [dict(f) for f in faults.flips]
    if trace:
        from ..telemetry.merge import telemetry_payload

        context = dict(ctx or {})
        context.setdefault("job", spec.job_id)
        context.setdefault("attempt", attempt)
        context.setdefault("worker", warm.worker_id if warm else None)
        meta["telemetry"] = telemetry_payload(telemetry, **context)
    if warm is not None:
        warm.jobs_done += 1
    return rec, meta


def run_job_inline(spec: JobSpec):
    """Fault-free, checkpoint-free reference run of *spec* in this process.

    This is the oracle of the chaos gate: whatever the pool survives —
    kills, faults, retries, engine reroutes — each job's receivers must be
    bit-identical to this run of the same spec.
    """
    prop, dt = build_problem(spec)
    rec, _plan = prop.forward(
        nt=spec.nt, dt=dt, schedule=make_schedule(spec.schedule), engine=spec.engine
    )
    return rec


# -- crash-safe result/error files ----------------------------------------------------

def _atomic_write(path: Path, writer) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        writer(fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _result_path(job_dir) -> Path:
    return Path(job_dir) / "result.npz"


def _error_path(job_dir, attempt: int) -> Path:
    return Path(job_dir) / f"error-{attempt:02d}.pkl"


def write_result(job_dir, rec: Optional[np.ndarray], meta: dict) -> None:
    arrays = {"meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    if rec is not None:
        arrays["rec"] = rec

    def writer(fh):
        np.savez(fh, **arrays)

    _atomic_write(_result_path(job_dir), writer)


def read_result(job_dir) -> Optional[Tuple[Optional[np.ndarray], dict]]:
    """The worker's reported result, or None if it never reported one."""
    path = _result_path(job_dir)
    if not path.exists():
        return None
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        rec = data["rec"].copy() if "rec" in data.files else None
    return rec, meta


def write_error(job_dir, attempt: int, exc: BaseException) -> None:
    """Pickle *exc* to the attempt's forensics file (atomic, SIGKILL-safe).

    Warm daemons write this *before* reporting over their pipe, one-shot
    workers before exiting nonzero — either way a visible file is a complete
    file, and a worker that dies between write and report still leaves the
    supervisor the evidence.
    """
    try:
        payload = pickle.dumps(exc)
    except Exception:
        payload = pickle.dumps(RuntimeError(f"{type(exc).__name__}: {exc}"))
    _atomic_write(_error_path(job_dir, attempt), lambda fh: fh.write(payload))


def read_error(job_dir, attempt: int) -> Optional[BaseException]:
    """The worker's pickled exception for *attempt*, or None."""
    path = _error_path(job_dir, attempt)
    if not path.exists():
        return None
    try:
        return pickle.loads(path.read_bytes())
    except Exception as exc:  # undecodable error file: keep the evidence
        return RuntimeError(f"worker error report unreadable: {exc}")


def child_main(spec: JobSpec, job_dir, attempt: int, resume: bool, chaos) -> None:
    """Worker-process entry point: run the attempt, report via files."""
    try:
        rec, meta = execute_attempt(
            spec, job_dir, attempt=attempt, resume=resume, chaos=chaos
        )
        write_result(job_dir, rec, meta)
    except BaseException as exc:  # noqa: BLE001 — everything crosses as a pickle
        write_error(job_dir, attempt, exc)
        sys.exit(1)
