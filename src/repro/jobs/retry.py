"""Retry policy: exponential backoff with deterministic seeded jitter.

The delay before attempt ``n`` (n >= 1, i.e. the first *retry*) is::

    min(max_delay, base * factor**(n-1)) * (1 + jitter * u_n)

where ``u_n`` is drawn from the job's own substream —
``split_seed(batch_seed, job_index, RETRY_SALT)`` — so a given
``(batch_seed, job_index)`` always produces the same backoff schedule, no
matter which worker slot the job lands on or how the rest of the batch is
scheduled.  Jitter decorrelates retries across jobs (no thundering herd
after a correlated fault) without sacrificing replayability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..runtime.faults import split_seed

__all__ = ["RetryPolicy", "RETRY_SALT"]

#: spawn-key salt separating the backoff substream from the fault substream
RETRY_SALT = 0x5E77


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff parameters (seconds)."""

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.base < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def rng_for(self, batch_seed: int, job_index: int) -> np.random.Generator:
        """The job's private jitter stream (order-independent, see
        :func:`repro.runtime.faults.split_seed`)."""
        return np.random.default_rng(split_seed(batch_seed, job_index, RETRY_SALT))

    def delay(
        self,
        attempt: int,
        rng: np.random.Generator,
        budget: Optional[float] = None,
        metrics=None,
        outcome: Optional[str] = None,
    ) -> float:
        """Backoff before retry *attempt* (>= 1), consuming one jitter draw.

        *outcome* is the failed attempt's classification: ``"sdc"``
        (silently corrupted state detected by the ABFT guard) retries at the
        flat base delay instead of escalating exponentially — corruption is
        environmental, not evidence the job itself misbehaves, so punishing
        it with growing backoff only delays an attempt that is expected to
        succeed.  The jitter draw is consumed identically either way, so
        the per-job backoff stream stays aligned across outcome mixes.

        *budget* is the job's remaining deadline allowance in seconds: the
        returned delay is capped at it (floor 0), so a job never sleeps
        past the point where its next attempt is guaranteed to exceed its
        deadline — backoff must not convert a recoverable fault into a
        timeout.  The jitter draw is consumed *before* capping, so the
        deterministic per-job backoff stream stays aligned whether or not a
        deadline intervened.

        *metrics* (a :class:`~repro.telemetry.metrics.MetricsRegistry`)
        records the decided delay: ``retries_total`` and the
        ``retry_backoff_seconds`` histogram.  Observation never changes
        the returned value — the backoff stream stays deterministic.
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1 (the first retry)")
        if outcome == "sdc":
            raw = self.base
        else:
            raw = min(self.max_delay, self.base * self.factor ** (attempt - 1))
        delay = raw * (1.0 + self.jitter * float(rng.random()))
        if budget is not None:
            delay = min(delay, max(0.0, float(budget)))
        if metrics is not None:
            metrics.counter("retries_total", "retry attempts scheduled").inc()
            metrics.histogram(
                "retry_backoff_seconds", "decided backoff delay per retry"
            ).observe(delay)
        return delay

    def schedule(self, batch_seed: int, job_index: int, retries: int) -> List[float]:
        """The first *retries* backoff delays of job *job_index* — exactly
        what the pool will sleep, reproducible from the batch seed alone."""
        rng = self.rng_for(batch_seed, job_index)
        return [self.delay(n, rng) for n in range(1, retries + 1)]
