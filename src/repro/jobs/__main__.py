"""Command-line front-end of the batch-execution service.

Usage::

    python -m repro.jobs --jobs 16 --workers 4                 # clean batch
    python -m repro.jobs --jobs 16 --fault-rate 0.2 --kill-workers 1 --verify
    python -m repro.jobs --jobs 8 --example mixed --schedule naive --json
    python -m repro.jobs --jobs 64 --stream --lane bulk --tenant-quota 8
    python -m repro.jobs --resume path/to/batchdir --verify    # crashed batch
    python -m repro.jobs --jobs 8 --trace --metrics-port 0 --workdir b0
    python -m repro.jobs.status b0                             # live pool health

Each job is one shot of a miniature survey: the paper's small verification
propagator with a seed-perturbed source position.  ``--fault-rate`` /
``--sdc-rate`` / ``--break-rate`` / ``--kill-workers`` / ``--hang-workers``
/ ``--poison-jobs`` / ``--kill-supervisor-after`` arm the chaos harness;
``--verify`` re-runs every completed job's spec serially, fault-free,
in-process and checks the pool's receivers are **bit-identical** — the
chaos gate CI runs.

``--resume BATCH_DIR`` replays the write-ahead journal of an interrupted
batch (supervisor SIGKILLed, OOM-killed, or gracefully drained by
SIGTERM/SIGINT): durable verified results are kept, everything else is
re-admitted and in-flight jobs continue from their newest checkpoint —
with ``--verify``, provably bit-identical to an uninterrupted batch.

Exit code 0 iff every submitted job completed (and, with ``--verify``,
matched); 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List

import numpy as np

from .breaker import CircuitBreaker
from .chaos import ChaosConfig
from .pool import JobPool
from .retry import RetryPolicy
from .spec import EXAMPLES, JOB_ENGINES, LANES, SCHEDULES, JobSpec
from .worker import run_job_inline


def build_specs(args) -> List[JobSpec]:
    examples = EXAMPLES if args.example == "mixed" else (args.example,)
    return [
        JobSpec(
            job_id=f"job-{i:03d}",
            example=examples[i % len(examples)],
            nt=args.nt,
            schedule=args.schedule,
            engine=args.engine,
            seed=args.seed + i,
            deadline=args.deadline,
            max_attempts=args.retries + 1,
            checkpoint_every=args.checkpoint_every,
            lane=args.lane,
        )
        for i in range(args.jobs)
    ]


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.jobs",
        description="Run a resilient batch of propagation jobs over a worker pool.",
    )
    parser.add_argument("--jobs", type=int, default=8, help="batch size (default: 8)")
    parser.add_argument(
        "--example", choices=EXAMPLES + ("mixed",), default="acoustic",
        help="propagator to run, or 'mixed' to cycle all three (default: acoustic)",
    )
    parser.add_argument(
        "--schedule", choices=SCHEDULES, default="wavefront",
        help="execution schedule (default: wavefront)",
    )
    parser.add_argument(
        "--engine", choices=JOB_ENGINES, default="fused",
        help="sweep engine requested per job (default: fused)",
    )
    parser.add_argument("--nt", type=int, default=64, help="timesteps per job (default: 64)")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes; 0 = serial in-process "
        "(default: 4, or the journaled batch header with --resume)",
    )
    parser.add_argument("--seed", type=int, default=0, help="batch master seed")
    parser.add_argument(
        "--deadline", type=float, default=None,
        help="per-job wall-clock budget in seconds (default: none)",
    )
    parser.add_argument("--retries", type=int, default=3, help="retry budget per job")
    parser.add_argument(
        "--checkpoint-every", type=int, default=4, help="snapshot cadence in timesteps"
    )
    parser.add_argument(
        "--capacity", type=int, default=256, help="admission-queue bound"
    )
    parser.add_argument(
        "--lane", choices=LANES, default="batch",
        help="priority lane of the submitted jobs (default: batch)",
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=None,
        help="per-tenant bound on admitted-but-unfinished jobs (default: none)",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="submit the batch as a lazily-pulled stream instead of upfront",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="fraction of jobs that get one injected in-run fault",
    )
    parser.add_argument(
        "--sdc-rate", type=float, default=0.0,
        help="fraction of jobs that get one injected finite bit-flip "
        "(silent data corruption the ABFT guard must detect and recover)",
    )
    parser.add_argument(
        "--break-rate", type=float, default=0.0,
        help="fraction of jobs whose fused compiler is broken on attempt 0",
    )
    parser.add_argument(
        "--kill-workers", type=int, default=0,
        help="SIGKILL this many attempt-0 workers after their first checkpoint",
    )
    parser.add_argument(
        "--hang-workers", type=int, default=0,
        help="wedge the daemons of this many jobs on attempt 0 "
        "(heartbeat-silent livelock the supervisor must detect)",
    )
    parser.add_argument(
        "--hang-seconds", type=float, default=30.0,
        help="how long a chaos-hung daemon stays silent (default: 30)",
    )
    parser.add_argument(
        "--poison-jobs", type=int, default=0,
        help="this many jobs hard-crash every daemon on every attempt "
        "(must end quarantined)",
    )
    parser.add_argument(
        "--kill-supervisor-after", type=int, default=None,
        help="SIGKILL the supervisor itself once this many jobs are "
        "terminal (resume the batch dir afterwards with --resume)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=60.0,
        help="SIGKILL a busy daemon silent this long (seconds; default: 60)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=0.25,
        help="daemon liveness beat cadence in seconds (default: 0.25)",
    )
    parser.add_argument(
        "--poison-threshold", type=int, default=3,
        help="consecutive daemon crashes before a job is quarantined",
    )
    parser.add_argument(
        "--resume", metavar="BATCH_DIR", default=None,
        help="resume an interrupted batch from its write-ahead journal "
        "instead of submitting a new one",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=0,
        help="attach a fused-engine circuit breaker with this trip threshold (0 = off)",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="directory for checkpoints/results (default: a temp dir)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="re-run every spec serially fault-free and require bit-identical receivers",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="collect per-attempt span trees and merge them into one "
        "batch-wide Chrome trace (trace.json in the workdir, or ./trace.json "
        "with a temporary workdir)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus), /metrics.json and /healthz on "
        "this port while the batch runs (0 = ephemeral; the bound port is "
        "written to <workdir>/metrics.port)",
    )
    parser.add_argument(
        "--serve-grace", type=float, default=0.0, metavar="SECONDS",
        help="keep the metrics endpoint up this long after the batch ends "
        "(lets a scraper catch the final state; default: 0)",
    )
    parser.add_argument(
        "--status-interval", type=float, default=0.5, metavar="SECONDS",
        help="cadence of the live metrics.json snapshot in the workdir "
        "(0 disables the cadence; default: 0.5)",
    )
    parser.add_argument("--json", action="store_true", help="JSON report on stdout")
    args = parser.parse_args(argv)

    if args.resume is not None:
        pool = JobPool.resume(
            args.resume,
            workers=args.workers,
            trace=args.trace,
            status_interval=args.status_interval,
        )
    else:
        chaos = None
        if (
            args.fault_rate
            or args.sdc_rate
            or args.break_rate
            or args.kill_workers
            or args.hang_workers
            or args.poison_jobs
            or args.kill_supervisor_after is not None
        ):
            chaos = ChaosConfig(
                fault_rate=args.fault_rate,
                sdc_rate=args.sdc_rate,
                break_rate=args.break_rate,
                kill_workers=args.kill_workers,
                hang_workers=args.hang_workers,
                hang_seconds=args.hang_seconds,
                poison_jobs=args.poison_jobs,
                kill_supervisor_after=args.kill_supervisor_after,
            )
        breaker = (
            CircuitBreaker(threshold=args.breaker_threshold)
            if args.breaker_threshold > 0
            else None
        )
        pool = JobPool(
            workers=4 if args.workers is None else args.workers,
            capacity=args.capacity,
            retry=RetryPolicy(),
            breaker=breaker,
            chaos=chaos,
            batch_seed=args.seed,
            workdir=args.workdir,
            tenant_quota=args.tenant_quota,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            poison_threshold=args.poison_threshold,
            trace=args.trace,
            status_interval=args.status_interval,
        )
        specs = build_specs(args)
        if args.stream:
            pool.submit(iter(specs))
        else:
            for spec in specs:
                pool.submit(spec)

    server = None
    if args.metrics_port is not None and pool.metrics is not None:
        from ..telemetry.metrics import MetricsServer

        server = MetricsServer(pool.metrics, port=args.metrics_port)
        try:
            (pool.workdir / "metrics.port").write_text(f"{server.port}\n")
        except OSError:
            pass
        print(f"metrics endpoint: {server.url}/metrics", file=sys.stderr)

    # the pool's temp workdir dies with run(); persistent paths keep theirs
    persistent_dir = args.resume or args.workdir
    try:
        report = pool.run()
    finally:
        if server is not None and args.serve_grace > 0:
            try:
                time.sleep(args.serve_grace)
            except KeyboardInterrupt:
                pass
        if server is not None:
            server.close()

    trace_path = None
    if args.trace:
        from ..telemetry.merge import write_batch_trace

        trace_path = (
            Path(persistent_dir) / "trace.json"
            if persistent_dir is not None
            else Path("trace.json")
        )
        write_batch_trace(report, trace_path, pool.telemetry)
        print(f"merged batch trace: {trace_path}", file=sys.stderr)

    verified = None
    if args.verify:
        verified = {}
        for result in report.results:
            if not result.ok:
                verified[result.spec.job_id] = False
                continue
            reference = run_job_inline(result.spec)
            verified[result.spec.job_id] = bool(
                np.array_equal(result.receivers, reference)
            )

    ok = report.ok and (verified is None or all(verified.values()))
    if args.json:
        payload = report.to_dict()
        payload["verified"] = verified
        payload["ok"] = ok
        if trace_path is not None:
            payload["trace_path"] = str(trace_path)
        print(json.dumps(payload, indent=2))
    else:
        for result in report.results:
            flags = []
            if len(result.attempts) > 1:
                flags.append(f"{len(result.attempts)} attempts")
            if any(a.resumed_from is not None for a in result.attempts):
                flags.append("resumed")
            if any(a.degraded for a in result.attempts):
                flags.append("degraded")
            if verified is not None:
                flags.append(
                    "verified" if verified[result.spec.job_id] else "MISMATCH"
                )
            detail = f" ({', '.join(flags)})" if flags else ""
            line = (
                f"{result.spec.job_id}: {result.status:<10} "
                f"{result.engine or '-':<7} {result.elapsed:7.3f}s{detail}"
            )
            if result.error is not None:
                line += f"  [{type(result.error).__name__}: {result.error}]"
            print(line)
        print(
            f"\n{report.completed}/{len(report.results)} completed "
            f"({report.retries} retries, {report.kills} chaos kills) in "
            f"{report.wall_seconds:.2f}s — {report.throughput:.2f} jobs/s "
            f"on {report.workers} worker(s)"
        )
        notes = []
        if report.resumed:
            notes.append("resumed from journal")
        if report.drained:
            notes.append(
                f"drained ({report.interrupted} interrupted, resumable)"
            )
        if report.quarantined:
            notes.append(f"{report.quarantined} quarantined")
        if report.hung_workers:
            notes.append(f"{report.hung_workers} hung daemon(s) replaced")
        if notes:
            print("; ".join(notes))
        for err in report.stream_errors:
            print(f"stream error: {err}")
        if report.workers > 0:
            warmth = f"{report.warm_attempts} warm / {report.cold_attempts} cold"
            ratio = report.warm_over_cold()
            if ratio is not None:
                warmth += f" (warm_over_cold {ratio:.2f}x)"
            print(
                f"attempts: {warmth}; {report.workers_spawned} daemon(s) spawned"
            )
            phases = report.phase_totals()
            if any(phases.values()):
                print(
                    "phase seconds: "
                    + "  ".join(f"{k}={v:.3f}" for k, v in phases.items())
                )
        if not ok:
            print("BATCH FAILED: lost jobs or verification mismatches")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
