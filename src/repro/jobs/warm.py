"""Warm-worker daemons: long-lived processes that keep kernel caches hot.

The process-per-attempt pool paid fork + IR re-derivation + kernel
re-compilation + step-plan geometry for *every* attempt — exactly the work
the paper says to amortise across time iterations, thrown away per job.  A
:class:`WarmWorker` is the fix: one daemon process preforked per pool slot,
dispatched jobs over a private duplex pipe, returning results over the same
pipe.  Because the process survives from job to job:

* the process-wide fused/RHS kernel caches
  (:func:`repro.ir.pycodegen.kernel_cache_stats`) stay warm — every job
  after the first binds its sweeps by cache hit instead of compilation;
* the ``(tile, height)`` wavefront step plans persist in the worker's
  :class:`WarmState` per problem family and are replayed, not recomputed;
* the model/geometry arrays arrive once, as
  :class:`~repro.jobs.shm.SharedArrayHandle` attachments, zero-copy.

Fault domains are unchanged from the process-per-attempt design: the pipe
is private per worker, so a SIGKILL mid-write corrupts nothing shared; a
dead-silent worker is detected by the supervisor, its in-flight job retried
(resuming bit-identically from its ``FileCheckpointStore``), and a fresh
daemon preforked in its place.  Worker-side failures are still pickled to
the job's ``error-NN.pkl`` forensics file *before* crossing the pipe, so a
crash between write and send loses no evidence.

**Liveness**: a busy daemon also *heartbeats* — a background thread sends
``("hb", worker_id)`` over the pipe every ``heartbeat_interval`` seconds
while a job is executing (sends are lock-serialised with result messages,
so a heartbeat can never tear a result frame).  Death is easy to detect;
*wedging* is not: a daemon stuck in a native call or a runaway loop is
alive by every OS measure while its lane starves below the job deadline.
Heartbeat silence is the tell: the supervisor SIGKILLs a busy daemon whose
last beat is older than ``heartbeat_timeout``, retries its job from the
newest checkpoint, and preforks a replacement — a hang costs one timeout,
never a stalled lane.
"""

from __future__ import annotations

import pickle
import threading
import time
from typing import Dict, Mapping, Optional

from .spec import JobSpec

__all__ = ["WarmState", "WarmWorker", "warm_main", "SHUTDOWN", "HEARTBEAT"]

#: parent -> worker sentinel asking the daemon loop to exit cleanly
SHUTDOWN = "shutdown"

#: worker -> parent message tag of a liveness heartbeat
HEARTBEAT = "hb"


class WarmState:
    """Per-daemon caches that survive across jobs.

    ``shared`` maps registry keys to the read-only shared-memory arrays the
    worker attached at startup (empty for the serial executor, which reads
    nothing remote).  ``step_cache`` hands out one persistent step-plan dict
    per *problem family* — (example, schedule, engine) — so wavefront tile
    geometry computed for one shot is replayed for every later shot of the
    same family.  ``jobs_done`` drives the warm/cold attribution: an attempt
    is *warm* iff its daemon had already completed at least one job.
    """

    def __init__(
        self,
        shared: Optional[Mapping[str, object]] = None,
        worker_id: Optional[int] = None,
    ):
        self.shared: Dict[str, object] = dict(shared or {})
        self.worker_id = worker_id
        self.jobs_done = 0
        self._step_caches: Dict[tuple, dict] = {}

    def step_cache(self, spec: JobSpec) -> dict:
        """The family step cache for *spec* — instrumentation counts are
        evicted first: they are fingerprinted by mask object ids, which a
        long-lived process may recycle across operators, and they are cheap
        to rebuild (the expensive `(tile, height)` step plans stay)."""
        cache = self._step_caches.setdefault(
            (spec.example, spec.schedule, spec.engine), {}
        )
        cache.pop("instr-counts", None)
        return cache


def _safe_exception(exc: BaseException) -> BaseException:
    """*exc* if it survives a pickle round-trip, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


class _Heartbeat:
    """Daemon-side liveness beacon: a background thread that sends
    :data:`HEARTBEAT` messages while a job is executing.

    ``begin``/``end`` bracket each job; outside them the thread idles (an
    idle daemon is blocked in ``conn.recv`` — silence there is normal, and
    the supervisor only judges *busy* workers).  All sends go through the
    shared lock so a heartbeat can never interleave with a result frame.
    """

    def __init__(self, conn, lock: threading.Lock, worker_id: int, interval: float):
        self.conn = conn
        self.lock = lock
        self.worker_id = worker_id
        self.interval = max(0.01, float(interval))
        self._busy = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name=f"repro-hb-{worker_id}"
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            if not self._busy.is_set():
                continue
            try:
                with self.lock:
                    self.conn.send((HEARTBEAT, self.worker_id))
            except (BrokenPipeError, OSError, ValueError):
                return  # supervisor gone; the main loop will notice too

    def begin(self) -> None:
        self._busy.set()

    def end(self) -> None:
        self._busy.clear()

    def stop(self) -> None:
        self._stop.set()


def warm_main(
    worker_id: int,
    conn,
    handles: Mapping[str, object],
    heartbeat_interval: float = 0.25,
) -> None:
    """Daemon entry point: attach shared arrays once, then serve jobs until
    a :data:`SHUTDOWN` sentinel (or pipe EOF) arrives.

    Messages in: ``("job", spec, job_dir, attempt, resume, chaos_entry,
    dispatch_ts, ctx)`` — *ctx* is ``None`` or a trace context (batch id,
    ``trace`` flag, worker id, and the parent's ``perf_counter`` reading at
    dispatch); the daemon stamps its own clock at receipt (``recv_perf``)
    and echoes both back inside the attempt's telemetry payload, which is
    how the supervisor computes the per-attempt clock offset
    (:mod:`repro.telemetry.merge`).  Messages out: ``("ok", job_id,
    attempt, receivers, meta)``, ``("err", job_id, attempt, exception)``,
    or ``("hb", worker_id)`` liveness beats while executing.  Failures are pickled to
    the job's forensics file before the pipe send, so the supervisor can
    still reconstruct the failure if the daemon dies between the two.

    Chaos hooks: an entry with ``hang_seconds > 0`` on attempt 0 wedges the
    daemon first — heartbeats *suspended*, simulating a livelock the
    supervisor must detect by silence; an entry with ``poison=True``
    hard-exits the process on every attempt (the quarantine pathology — no
    report, no forensics, just a dead daemon, exactly like a segfault).

    **Orphan self-termination**: pipe EOF alone cannot signal supervisor
    death — under fork, each daemon inherits copies of its *siblings'*
    pipe ends, so when the supervisor is SIGKILLed the orphans keep each
    other's pipes open forever.  The recv loop therefore polls with a
    timeout and exits when the parent pid changes (re-parenting to init/a
    subreaper is the one unfakeable sign the supervisor is gone), so an
    orphaned fleet drains itself within about a second instead of pinning
    pipes, shared-memory mappings and inherited stdio open indefinitely.
    """
    import os

    from ..errors import SilentCorruptionError
    from .shm import AttachedArrays, verify_handles
    from . import worker as worker_mod

    parent_pid = os.getppid()
    attached = AttachedArrays(handles)
    warm = WarmState(shared=attached.arrays, worker_id=worker_id)
    send_lock = threading.Lock()
    beat = _Heartbeat(conn, send_lock, worker_id, heartbeat_interval)
    try:
        while True:
            try:
                if not conn.poll(1.0):
                    if os.getppid() != parent_pid:
                        break  # orphaned: the supervisor died without EOF
                    continue
                msg = conn.recv()
            except (EOFError, OSError):  # supervisor died or closed the pipe
                break
            if msg[0] == SHUTDOWN:
                break
            _, spec, job_dir, attempt, resume, chaos, dispatch_ts, ctx = msg
            recv_ts = time.monotonic()
            recv_perf = time.perf_counter()  # clock-offset handshake stamp
            if chaos is not None and getattr(chaos, "poison", False):
                os._exit(66)  # hard crash: no report, no cleanup — poison
            if (
                chaos is not None
                and attempt == 0
                and getattr(chaos, "hang_seconds", 0.0) > 0
            ):
                # wedged, not dead: alive to the OS, silent on the pipe
                time.sleep(chaos.hang_seconds)
            beat.begin()
            try:
                # the pool marks retries after an sdc outcome: stop trusting
                # the (possibly corrupted) shared segments and recompute the
                # model arrays locally — bit-identical by construction
                distrust = bool(ctx and ctx.get("distrust_shm"))
                if not distrust:
                    # block-checksum gate: a flipped bit in /dev/shm poisons
                    # one attempt (classified sdc by the pool), not the batch
                    bad = verify_handles(handles, attached)
                    if bad:
                        raise SilentCorruptionError(
                            "shared-memory model segment(s) failed their "
                            f"published checksum: {', '.join(sorted(bad))}",
                            field=sorted(bad)[0],
                            detector="checksum",
                            keys=sorted(bad),
                        )
                trace_ctx = None
                if ctx is not None and ctx.get("trace"):
                    trace_ctx = {**ctx, "recv_perf": recv_perf}
                    trace_ctx.pop("trace", None)
                rec, meta = worker_mod.execute_attempt(
                    spec, job_dir, attempt=attempt, resume=resume, chaos=chaos,
                    warm=warm, trace=trace_ctx is not None, ctx=trace_ctx,
                    distrust_shm=distrust,
                )
                meta.setdefault("phases", {})["spawn"] = max(
                    0.0, recv_ts - dispatch_ts
                )
                with send_lock:
                    conn.send(("ok", spec.job_id, attempt, rec, meta))
            except BaseException as exc:  # noqa: BLE001 — crosses as a pickle
                worker_mod.write_error(job_dir, attempt, exc)
                try:
                    with send_lock:
                        conn.send(("err", spec.job_id, attempt, _safe_exception(exc)))
                except (BrokenPipeError, OSError):
                    break
            finally:
                beat.end()
    finally:
        beat.stop()
        attached.close()
        try:
            conn.close()
        except OSError:
            pass


class WarmWorker:
    """Supervisor-side handle of one warm daemon.

    Owns the daemon :class:`multiprocessing.Process` and the parent end of
    its private pipe.  ``job`` tracks the in-flight supervisor job (None =
    idle); the pool never dispatches at a busy worker.  ``last_beat`` is
    the supervisor-side liveness clock: reset at dispatch and bumped by
    every message (heartbeat or result) drained from the pipe — a busy
    worker whose ``last_beat`` goes stale is wedged, not working.
    """

    def __init__(
        self,
        ctx,
        worker_id: int,
        handles: Mapping[str, object],
        heartbeat_interval: float = 0.25,
    ):
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=warm_main,
            args=(worker_id, child_conn, dict(handles), heartbeat_interval),
            daemon=True,
            name=f"repro-warm-{worker_id}",
        )
        self.proc.start()
        child_conn.close()  # parent's copy; lets EOF reach the daemon
        self.job = None
        self.jobs_dispatched = 0
        self.last_beat = time.monotonic()

    # -- state ---------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self.job is not None

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self.proc.exitcode

    # -- dispatch / results ----------------------------------------------------------
    def dispatch(self, spec: JobSpec, job_dir: str, attempt: int,
                 resume: bool, chaos, ctx: Optional[dict] = None) -> None:
        """Send one job at the daemon; raises ``BrokenPipeError``/``OSError``
        when the daemon is already dead (the pool treats that as a crash).

        *ctx* (tracing on) is stamped with this worker's id and the parent's
        ``perf_counter`` reading immediately before the pipe write — the
        parent half of the clock-offset handshake."""
        if ctx is not None:
            ctx = {**ctx, "worker": self.worker_id,
                   "dispatch_perf": time.perf_counter()}
        self.conn.send(
            ("job", spec, str(job_dir), attempt, resume, chaos,
             time.monotonic(), ctx)
        )
        self.jobs_dispatched += 1
        self.last_beat = time.monotonic()

    def recv_nowait(self):
        """The daemon's next buffered *job* message, or None.  Heartbeats
        are consumed here (bumping :attr:`last_beat`) and never surfaced.
        Buffered data is readable even after the daemon died, which is what
        lets the pool honour a result that raced a deadline kill."""
        try:
            while self.conn.poll(0):
                msg = self.conn.recv()
                self.last_beat = time.monotonic()
                if msg[0] != HEARTBEAT:
                    return msg
        except (EOFError, OSError):
            return None
        return None

    def stalled(self, timeout: Optional[float]) -> bool:
        """True iff this worker is busy and has been silent for longer than
        *timeout* seconds (None disables the check)."""
        return (
            timeout is not None
            and self.busy
            and (time.monotonic() - self.last_beat) > timeout
        )

    # -- lifecycle -------------------------------------------------------------------
    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join()

    def shutdown(self, timeout: float = 2.0) -> None:
        """Ask the daemon to exit; escalate to SIGKILL if it does not."""
        try:
            self.conn.send((SHUTDOWN,))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join()
        try:
            self.conn.close()
        except OSError:
            pass
