"""Warm-worker daemons: long-lived processes that keep kernel caches hot.

The process-per-attempt pool paid fork + IR re-derivation + kernel
re-compilation + step-plan geometry for *every* attempt — exactly the work
the paper says to amortise across time iterations, thrown away per job.  A
:class:`WarmWorker` is the fix: one daemon process preforked per pool slot,
dispatched jobs over a private duplex pipe, returning results over the same
pipe.  Because the process survives from job to job:

* the process-wide fused/RHS kernel caches
  (:func:`repro.ir.pycodegen.kernel_cache_stats`) stay warm — every job
  after the first binds its sweeps by cache hit instead of compilation;
* the ``(tile, height)`` wavefront step plans persist in the worker's
  :class:`WarmState` per problem family and are replayed, not recomputed;
* the model/geometry arrays arrive once, as
  :class:`~repro.jobs.shm.SharedArrayHandle` attachments, zero-copy.

Fault domains are unchanged from the process-per-attempt design: the pipe
is private per worker, so a SIGKILL mid-write corrupts nothing shared; a
dead-silent worker is detected by the supervisor, its in-flight job retried
(resuming bit-identically from its ``FileCheckpointStore``), and a fresh
daemon preforked in its place.  Worker-side failures are still pickled to
the job's ``error-NN.pkl`` forensics file *before* crossing the pipe, so a
crash between write and send loses no evidence.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, Mapping, Optional

from .spec import JobSpec

__all__ = ["WarmState", "WarmWorker", "warm_main", "SHUTDOWN"]

#: parent -> worker sentinel asking the daemon loop to exit cleanly
SHUTDOWN = "shutdown"


class WarmState:
    """Per-daemon caches that survive across jobs.

    ``shared`` maps registry keys to the read-only shared-memory arrays the
    worker attached at startup (empty for the serial executor, which reads
    nothing remote).  ``step_cache`` hands out one persistent step-plan dict
    per *problem family* — (example, schedule, engine) — so wavefront tile
    geometry computed for one shot is replayed for every later shot of the
    same family.  ``jobs_done`` drives the warm/cold attribution: an attempt
    is *warm* iff its daemon had already completed at least one job.
    """

    def __init__(
        self,
        shared: Optional[Mapping[str, object]] = None,
        worker_id: Optional[int] = None,
    ):
        self.shared: Dict[str, object] = dict(shared or {})
        self.worker_id = worker_id
        self.jobs_done = 0
        self._step_caches: Dict[tuple, dict] = {}

    def step_cache(self, spec: JobSpec) -> dict:
        """The family step cache for *spec* — instrumentation counts are
        evicted first: they are fingerprinted by mask object ids, which a
        long-lived process may recycle across operators, and they are cheap
        to rebuild (the expensive `(tile, height)` step plans stay)."""
        cache = self._step_caches.setdefault(
            (spec.example, spec.schedule, spec.engine), {}
        )
        cache.pop("instr-counts", None)
        return cache


def _safe_exception(exc: BaseException) -> BaseException:
    """*exc* if it survives a pickle round-trip, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def warm_main(worker_id: int, conn, handles: Mapping[str, object]) -> None:
    """Daemon entry point: attach shared arrays once, then serve jobs until
    a :data:`SHUTDOWN` sentinel (or pipe EOF) arrives.

    Messages in: ``("job", spec, job_dir, attempt, resume, chaos_entry,
    dispatch_ts)``.  Messages out: ``("ok", job_id, attempt, receivers,
    meta)`` or ``("err", job_id, attempt, exception)``.  Failures are
    pickled to the job's forensics file before the pipe send, so the
    supervisor can still reconstruct the failure if the daemon dies between
    the two.
    """
    from .shm import AttachedArrays
    from . import worker as worker_mod

    attached = AttachedArrays(handles)
    warm = WarmState(shared=attached.arrays, worker_id=worker_id)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):  # supervisor died or closed the pipe
                break
            if msg[0] == SHUTDOWN:
                break
            _, spec, job_dir, attempt, resume, chaos, dispatch_ts = msg
            recv_ts = time.monotonic()
            try:
                rec, meta = worker_mod.execute_attempt(
                    spec, job_dir, attempt=attempt, resume=resume, chaos=chaos,
                    warm=warm,
                )
                meta.setdefault("phases", {})["spawn"] = max(
                    0.0, recv_ts - dispatch_ts
                )
                conn.send(("ok", spec.job_id, attempt, rec, meta))
            except BaseException as exc:  # noqa: BLE001 — crosses as a pickle
                worker_mod.write_error(job_dir, attempt, exc)
                try:
                    conn.send(("err", spec.job_id, attempt, _safe_exception(exc)))
                except (BrokenPipeError, OSError):
                    break
    finally:
        attached.close()
        try:
            conn.close()
        except OSError:
            pass


class WarmWorker:
    """Supervisor-side handle of one warm daemon.

    Owns the daemon :class:`multiprocessing.Process` and the parent end of
    its private pipe.  ``job`` tracks the in-flight supervisor job (None =
    idle); the pool never dispatches at a busy worker.
    """

    def __init__(self, ctx, worker_id: int, handles: Mapping[str, object]):
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=warm_main,
            args=(worker_id, child_conn, dict(handles)),
            daemon=True,
            name=f"repro-warm-{worker_id}",
        )
        self.proc.start()
        child_conn.close()  # parent's copy; lets EOF reach the daemon
        self.job = None
        self.jobs_dispatched = 0

    # -- state ---------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self.job is not None

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self.proc.exitcode

    # -- dispatch / results ----------------------------------------------------------
    def dispatch(self, spec: JobSpec, job_dir: str, attempt: int,
                 resume: bool, chaos) -> None:
        """Send one job at the daemon; raises ``BrokenPipeError``/``OSError``
        when the daemon is already dead (the pool treats that as a crash)."""
        self.conn.send(
            ("job", spec, str(job_dir), attempt, resume, chaos, time.monotonic())
        )
        self.jobs_dispatched += 1

    def recv_nowait(self):
        """The daemon's next buffered message, or None.  Buffered data is
        readable even after the daemon died, which is what lets the pool
        honour a result that raced a deadline kill."""
        try:
            if self.conn.poll(0):
                return self.conn.recv()
        except (EOFError, OSError):
            return None
        return None

    # -- lifecycle -------------------------------------------------------------------
    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join()

    def shutdown(self, timeout: float = 2.0) -> None:
        """Ask the daemon to exit; escalate to SIGKILL if it does not."""
        try:
            self.conn.send((SHUTDOWN,))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join()
        try:
            self.conn.close()
        except OSError:
            pass
