"""Circuit breaker around a failing execution engine.

Without it, every job that requests the fused engine pays the full
compilation-failure cost (attempt compile, catch
:class:`~repro.errors.EngineCompilationError` / ``KernelLintError``, warn,
degrade) even when the last ten jobs already proved the fused compiler is
broken.  The breaker remembers: after ``threshold`` consecutive failures it
*opens* and subsequent work is routed straight down the existing
fused→kernel→interp ladder; after ``cooldown`` seconds it goes *half-open*
and lets exactly one probe through — success closes it again, failure
re-opens it.

Two attachment points, same object:

* **in-process** — ``Operator.apply(..., breaker=br)`` /
  ``Propagator.forward(..., breaker=br)``: the engine ladder consults
  ``allow(rung)`` before attempting a rung and reports
  ``record_success``/``record_failure`` per rung (see
  :meth:`repro.ir.operator.Operator._build_sweeps`).
* **cross-process** — the :class:`~repro.jobs.pool.JobPool` supervisor keeps
  the breaker in the parent: ``allow("fused")`` decides the engine a job is
  dispatched with, and the worker's reported fallbacks feed
  ``record_failure``/``record_success`` when the result comes back.

The clock is injectable so tests drive the cooldown deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

__all__ = ["CircuitBreaker"]

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

#: gauge encoding of the state series: the live value of
#: ``repro_breaker_state{engine=...}`` at any instant
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one tracked engine.

    Parameters
    ----------
    threshold:
        Consecutive failures of the tracked engine that trip the breaker.
    cooldown:
        Seconds an open breaker waits before allowing a half-open probe.
    engine:
        The rung being tracked (default ``"fused"``); every other engine is
        always allowed, which guarantees the ladder's terminal ``interp``
        rung can never be blocked.
    clock:
        Monotonic float-second clock, injectable for tests.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        engine: str = "fused",
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self.engine = engine
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probe_inflight = False
        #: (clock, transition) log: ("open", ...), ("half_open", ...), ("closed", ...)
        self.transitions: List[tuple] = []
        self._m_state = None
        self._m_transitions = None

    # -- state -------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing ``open`` → ``half_open`` when the
        cooldown has elapsed (observation triggers the transition)."""
        if self._state == OPEN and self._clock() - self._opened_at >= self.cooldown:
            self._transition(HALF_OPEN)
            self._probe_inflight = False
        return self._state

    def _transition(self, state: str) -> None:
        self._state = state
        self.transitions.append((self._clock(), state))
        if self._m_state is not None:
            self._m_state.set(STATE_CODES[state], engine=self.engine)
            self._m_transitions.inc(engine=self.engine, state=state)

    def bind_metrics(self, registry) -> None:
        """Publish this breaker's state into *registry* (a
        :class:`~repro.telemetry.metrics.MetricsRegistry`): the
        ``breaker_state`` gauge (0=closed, 1=open, 2=half_open) tracks the
        live state, ``breaker_transitions_total{engine,state}`` counts
        every transition — together they are the Prometheus view of the
        :attr:`transitions` log."""
        self._m_state = registry.gauge(
            "breaker_state",
            "circuit-breaker state: 0=closed, 1=open, 2=half_open",
            ("engine",),
        )
        self._m_transitions = registry.counter(
            "breaker_transitions_total",
            "circuit-breaker state transitions",
            ("engine", "state"),
        )
        self._m_state.set(STATE_CODES[self._state], engine=self.engine)

    # -- ladder hooks ------------------------------------------------------------
    def allow(self, engine: str) -> bool:
        """May *engine* be attempted right now?

        Untracked engines: always.  Tracked engine: yes while closed; no
        while open (pre-cooldown); exactly one caller gets a yes per
        half-open period (the probe) until its outcome is recorded.
        """
        if engine != self.engine:
            return True
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def record_success(self, engine: str) -> None:
        if engine != self.engine:
            return
        self._failures = 0
        self._probe_inflight = False
        if self._state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self, engine: str, exc: Optional[BaseException] = None) -> None:
        if engine != self.engine:
            return
        self._failures += 1
        probe_failed = self._probe_inflight
        self._probe_inflight = False
        if probe_failed or self._failures >= self.threshold:
            if self._state != OPEN:
                self._transition(OPEN)
            self._opened_at = self._clock()

    def record_inconclusive(self, engine: str) -> None:
        """The attempt died before the engine outcome was knowable (worker
        crash/timeout): release a half-open probe slot without judging."""
        if engine != self.engine:
            return
        self._probe_inflight = False

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.engine!r}, state={self.state}, "
            f"failures={self._failures}/{self.threshold})"
        )
