"""Zero-copy shared-memory registry for read-only model/geometry arrays.

The warm-worker pool preforks long-lived daemons and dispatches many jobs at
them; every job of a batch runs over the *same* velocity model and geometry.
Shipping those arrays inside each job payload (or rebuilding them per
attempt) pays a serialisation/compute cost per job that the paper's whole
premise says to amortise.  This module is the amortisation: the supervisor
:meth:`publishes <SharedArrayRegistry.publish>` each read-only array into a
POSIX shared-memory segment once per batch, job payloads carry only the
picklable :class:`SharedArrayHandle` (segment name + shape + dtype), and
workers :func:`attach <attach_array>` a read-only numpy view — zero copies,
zero pickled grids.

Ownership is strictly parent-side: the registry that created a segment is
the only thing that ever unlinks it (:meth:`SharedArrayRegistry.close`,
called from ``JobPool.run``'s ``finally``).  Workers only map and unmap;
worker-side attachments are explicitly *unregistered* from the
:mod:`multiprocessing.resource_tracker` (registration suppressed at attach)
so a SIGKILLed worker can never confuse the tracker into double-unlinking
or warning about segments it never owned.  A SIGKILL drops the worker's mapping with the process; the
parent's ``finally`` unlink is what guarantees no ``/dev/shm`` entry
outlives the batch (:func:`segment_exists` is the test hook for exactly
that invariant).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "SharedArrayHandle",
    "SharedArrayRegistry",
    "AttachedArrays",
    "attach_array",
    "segment_exists",
    "unlink_stale",
    "verify_handles",
]


@contextlib.contextmanager
def _attach_untracked():
    """Attach without becoming an owner in the resource tracker's eyes.

    The creating registry owns unlinking; an attacher must never be
    recorded, or (under fork, where parent and children share one tracker
    daemon) its registration would alias the parent's and the eventual
    unlink would double-unregister.  Python 3.11 SharedMemory has no
    ``track=False``, so registration is suppressed for the duration of the
    constructor instead — the standard pre-3.13 workaround.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register
    try:
        yield
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable zero-copy reference to one published array.

    Carries everything needed to rebuild a read-only numpy view in another
    process: the POSIX segment name plus the array's shape and dtype — and
    the CRC-32 block checksum recorded at publish time, so an attacher can
    prove the segment's bytes are still the bytes the supervisor wrote (a
    flipped bit in ``/dev/shm`` otherwise poisons every job of the batch).
    """

    key: str
    name: str
    shape: Tuple[int, ...]
    dtype: str
    #: CRC-32 of the published bytes (None for handles from older pickles)
    checksum: Optional[int] = None

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    def verify(self, array: np.ndarray) -> bool:
        """True iff *array*'s bytes still match the published checksum
        (vacuously true for handles that never carried one)."""
        if self.checksum is None:
            return True
        from ..runtime.abft import array_checksum

        return array_checksum(array) == self.checksum


class AttachedArrays:
    """Worker-side view of a set of handles: ``key -> read-only ndarray``.

    Keeps the underlying :class:`~multiprocessing.shared_memory.SharedMemory`
    objects referenced for as long as the views are in use; :meth:`close`
    drops the views first (a buffer with live exports cannot be unmapped)
    and then unmaps every segment.  Never unlinks — that is the publishing
    registry's job.
    """

    def __init__(self, handles: Mapping[str, SharedArrayHandle]):
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        for key, handle in handles.items():
            with _attach_untracked():
                shm = shared_memory.SharedMemory(name=handle.name)
            view = np.ndarray(
                handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf
            )
            view.flags.writeable = False
            self._segments[key] = shm
            self.arrays[key] = view

    def close(self) -> None:
        self.arrays.clear()
        for shm in self._segments.values():
            try:
                shm.close()
            except BufferError:  # a stray view still exports the buffer
                pass
        self._segments.clear()

    def __enter__(self) -> "AttachedArrays":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _PinnedView(np.ndarray):
    """ndarray subclass that can carry the keepalive reference a plain
    ndarray cannot (no instance dict)."""


def attach_array(handle: SharedArrayHandle) -> np.ndarray:
    """One-shot convenience: attach *handle* and return its read-only view.

    The segment stays mapped for the life of the returned array (the
    :class:`AttachedArrays` wrapper is pinned onto it).
    """
    attached = AttachedArrays({handle.key: handle})
    view = attached.arrays[handle.key].view(_PinnedView)
    view._repro_shm_keepalive = attached
    view.flags.writeable = False
    return view


class SharedArrayRegistry:
    """Parent-side owner of the batch's published segments.

    ``publish`` copies an array into a fresh segment exactly once; ``close``
    (idempotent, always reached via ``JobPool.run``'s ``finally``) unmaps
    and unlinks everything, so no ``/dev/shm`` entry survives the batch even
    when workers were SIGKILLed mid-map.
    """

    def __init__(self):
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._handles: Dict[str, SharedArrayHandle] = {}

    def publish(self, key: str, array: np.ndarray) -> SharedArrayHandle:
        if key in self._handles:
            raise ValueError(f"duplicate shared-array key {key!r}")
        from ..runtime.abft import array_checksum

        arr = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[...] = arr
        handle = SharedArrayHandle(
            key=key,
            name=shm.name,
            shape=tuple(arr.shape),
            dtype=arr.dtype.str,
            checksum=array_checksum(arr),
        )
        self._segments[key] = shm
        self._handles[key] = handle
        return handle

    def handles(self) -> Dict[str, SharedArrayHandle]:
        return dict(self._handles)

    def segment_names(self) -> Tuple[str, ...]:
        return tuple(h.name for h in self._handles.values())

    def __len__(self) -> int:
        return len(self._handles)

    def close(self) -> None:
        for shm in self._segments.values():
            try:
                shm.close()
            except BufferError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        self._handles.clear()

    def __enter__(self) -> "SharedArrayRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def verify_handles(
    handles: Mapping[str, SharedArrayHandle], attached: AttachedArrays
) -> Tuple[str, ...]:
    """Keys whose attached segments fail their published checksum.

    Warm daemons run this at attempt start: a corrupted model array then
    fails *one attempt* with a structured
    :class:`~repro.errors.SilentCorruptionError` (classified ``sdc`` by the
    pool, which re-ships private copies on the retry) instead of silently
    poisoning every job that maps the segment.
    """
    return tuple(
        key
        for key, handle in handles.items()
        if key in attached.arrays and not handle.verify(attached.arrays[key])
    )


def segment_exists(name: str) -> bool:
    """True iff the named shared-memory segment is still linked (test hook
    for the no-leaked-``/dev/shm``-entries invariant)."""
    try:
        with _attach_untracked():
            shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


def unlink_stale(name: str) -> bool:
    """Unlink a segment leaked by a dead supervisor; True if one existed.

    The one sanctioned exception to parent-side ownership: a SIGKILLed
    supervisor never reaches its ``finally`` unlink, so the segment names it
    journaled (the batch journal's ``shm`` records) are orphans by
    definition — no process that could legitimately unlink them is alive.
    ``JobPool.resume`` reclaims them through this helper before publishing
    its own registry.
    """
    try:
        with _attach_untracked():
            shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        return False
    return True
