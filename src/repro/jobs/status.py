"""Live (and post-hoc) status view of a batch directory.

``python -m repro.jobs.status BATCH_DIR`` renders pool health from the
``metrics.json`` snapshot the supervisor atomically refreshes on its status
cadence — lanes, workers, breaker state, tenant occupancy, attempt latency
quantiles and achieved stencil throughput — and falls back to (or is forced
onto, with ``--journal``) a replay of the write-ahead journal, whose
timestamped records reconstruct admission/terminal timings and per-tenant
throughput for a batch that is finished, crashed, or was run with metrics
off.

Because ``metrics.json`` is written with a temp-file + ``os.replace``, a
reader never sees a torn snapshot: this command is safe to run in a loop
(``watch -n1 python -m repro.jobs.status BATCH_DIR``) against a live batch.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .journal import JOURNAL_NAME, load_journal
from .pool import METRICS_NAME

__all__ = ["load_status", "journal_stats", "render_status", "main"]

#: gauge value -> breaker state name (see repro.jobs.breaker.STATE_CODES)
_BREAKER_STATES = {0: "closed", 1: "open", 2: "half_open"}


def load_status(batch_dir) -> Optional[dict]:
    """The latest ``metrics.json`` snapshot of *batch_dir*, or None."""
    path = Path(batch_dir) / METRICS_NAME
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _series(snapshot: dict, name: str) -> List[dict]:
    family = (snapshot.get("metrics") or {}).get(name)
    return list(family.get("series", [])) if family else []


def _value(snapshot: dict, name: str, **labels) -> Optional[float]:
    for entry in _series(snapshot, name):
        if all(entry["labels"].get(k) == str(v) for k, v in labels.items()):
            return entry.get("value")
    return None


def _quantile(entry: dict, q: float) -> Optional[float]:
    """Quantile of one snapshot histogram series (cumulative buckets keyed
    by edge repr / ``+Inf``) — the JSON mirror of ``Histogram.quantile``."""
    buckets = entry.get("buckets") or {}
    total = entry.get("count", 0)
    if not buckets or not total:
        return None
    edges = sorted(
        (math.inf if k == "+Inf" else float(k), v) for k, v in buckets.items()
    )
    rank = q * total
    prev_edge, prev_cum = 0.0, 0.0
    finite = [e for e, _ in edges if math.isfinite(e)]
    for edge, cum in edges:
        if cum >= rank:
            if not math.isfinite(edge):  # overflow bucket: saturate
                return finite[-1] if finite else None
            span = cum - prev_cum
            frac = (rank - prev_cum) / span if span > 0 else 1.0
            return prev_edge + (edge - prev_edge) * min(1.0, max(0.0, frac))
        prev_edge, prev_cum = (edge if math.isfinite(edge) else prev_edge), cum
    return finite[-1] if finite else None


def journal_stats(batch_dir) -> Optional[dict]:
    """Timings and per-tenant throughput replayed from the journal's
    timestamped records; None when there is no readable journal."""
    path = Path(batch_dir) / JOURNAL_NAME
    if not path.exists():
        return None
    try:
        replay = load_journal(path)
    except Exception:
        return None
    if not replay.records:
        return None
    ts = [r["ts"] for r in replay.records if isinstance(r.get("ts"), (int, float))]
    elapsed = (max(ts) - min(ts)) if len(ts) > 1 else 0.0
    tenants: Dict[str, dict] = {}
    lanes: Dict[str, int] = {}
    job_tenant: Dict[str, str] = {}
    for rec in replay.for_kind("admit"):
        spec = rec.get("spec") or {}
        tenant = spec.get("tenant", "default")
        lane = spec.get("lane", "batch")
        job_tenant[rec.get("job", "")] = tenant
        tenants.setdefault(tenant, {"admitted": 0, "completed": 0, "failed": 0})
        tenants[tenant]["admitted"] += 1
        lanes[lane] = lanes.get(lane, 0) + 1
    statuses: Dict[str, int] = {}
    for rec in replay.for_kind("terminal"):
        status = rec.get("status", "?")
        statuses[status] = statuses.get(status, 0) + 1
        tenant = job_tenant.get(rec.get("job", ""))
        if tenant in tenants:
            key = "completed" if status == "completed" else "failed"
            tenants[tenant][key] += 1
    for stats in tenants.values():
        stats["throughput_per_s"] = (
            stats["completed"] / elapsed if elapsed > 0 else None
        )
    kinds: Dict[str, int] = {}
    for rec in replay.records:
        kinds[rec.get("kind", "?")] = kinds.get(rec.get("kind", "?"), 0) + 1
    sdc_recs = replay.for_kind("sdc")
    return {
        "sdc": {
            "records": len(sdc_recs),
            "recovered": sum(1 for r in sdc_recs if r.get("recovered")),
            "tiles_reexecuted": sum(
                int(r.get("tiles_reexecuted", 0)) for r in sdc_recs
            ),
        },
        "storage_degraded": len(replay.for_kind("storage_degraded")),
        "records": len(replay.records),
        "kinds": kinds,
        "elapsed_seconds": elapsed,
        "statuses": statuses,
        "tenants": tenants,
        "lanes_admitted": lanes,
        "ended": bool(replay.for_kind("batch_end")),
        "resumes": len(replay.for_kind("resume")),
        "corrupt_tail": str(replay.corruption) if replay.corruption else None,
    }


def _fmt_seconds(v: Optional[float]) -> str:
    return "-" if v is None else f"{v * 1e3:.2f}ms" if v < 1 else f"{v:.2f}s"


def render_status(snapshot: Optional[dict], journal: Optional[dict]) -> str:
    """Human-readable pool-health view from whichever sources exist."""
    lines: List[str] = []
    if snapshot is not None:
        status = snapshot.get("status") or {}
        state = "final" if snapshot.get("final") else "live"
        lines.append(
            f"batch {snapshot.get('batch_id', '?')} [{state}] — "
            f"{status.get('completed', 0)}/{status.get('jobs', 0)} completed, "
            f"{status.get('terminal', 0)} terminal, "
            f"{status.get('active', 0)} active "
            f"({status.get('elapsed_seconds', 0.0):.2f}s elapsed)"
        )
        workers = status.get("workers") or {}
        if workers:
            lines.append(
                f"workers: {workers.get('alive', 0)} alive / "
                f"{workers.get('busy', 0)} busy of {workers.get('configured', 0)} "
                f"configured ({workers.get('spawned', 0)} spawned, "
                f"{workers.get('hung', 0)} hung)"
            )
        flags = [
            flag
            for flag, on in (
                ("draining", status.get("draining")),
                ("resumed", status.get("resumed")),
                ("storage degraded", status.get("storage_degraded")),
            )
            if on
        ]
        if flags:
            lines.append("flags: " + ", ".join(flags))
        depth = {
            e["labels"].get("lane", "?"): e.get("value", 0)
            for e in _series(snapshot, "repro_queue_depth")
        }
        if depth:
            lines.append(
                "queue depth: "
                + "  ".join(f"{lane}={int(n)}" for lane, n in sorted(depth.items()))
                + f"  (ready {status.get('ready', 0)}, delayed "
                f"{status.get('delayed', 0)})"
            )
        quota = _value(snapshot, "repro_tenant_quota")
        occupancy = _series(snapshot, "repro_tenant_active_jobs")
        if occupancy:
            cap = f"/{int(quota)}" if quota else ""
            lines.append(
                "tenants: "
                + "  ".join(
                    f"{e['labels'].get('tenant', '?')}={int(e.get('value', 0))}{cap}"
                    for e in sorted(occupancy, key=lambda e: str(e["labels"]))
                )
            )
        breaker = status.get("breaker")
        if breaker is None:
            series = _series(snapshot, "repro_breaker_state")
            if series:
                entry = series[0]
                breaker = {
                    "engine": entry["labels"].get("engine", "?"),
                    "state": _BREAKER_STATES.get(
                        int(entry.get("value", 0)), "?"
                    ),
                }
        if breaker:
            line = (
                f"breaker[{breaker.get('engine', '?')}]: "
                f"{breaker.get('state', '?')}"
            )
            if "transitions" in breaker:
                line += f" ({breaker['transitions']} transition(s))"
            lines.append(line)
        for entry in _series(snapshot, "repro_attempt_seconds"):
            outcome = entry["labels"].get("outcome", "?")
            lines.append(
                f"attempt latency [{outcome}]: n={entry.get('count', 0)} "
                f"p50={_fmt_seconds(_quantile(entry, 0.5))} "
                f"p90={_fmt_seconds(_quantile(entry, 0.9))} "
                f"p99={_fmt_seconds(_quantile(entry, 0.99))}"
            )
        points = _value(snapshot, "repro_jobs_points_updated_total")
        stencil_s = _value(snapshot, "repro_jobs_stencil_seconds_total")
        if points and stencil_s:
            lines.append(
                f"stencil throughput: {points / stencil_s / 1e9:.4f} GPts/s "
                f"({points:.3g} points over {stencil_s:.3f}s of stencil time)"
            )
        retries = _value(snapshot, "repro_jobs_retried_total")
        if retries:
            lines.append(f"retries: {int(retries)}")
        sdc_series = _series(snapshot, "repro_sdc_detections_total")
        if sdc_series:
            total = sum(e.get("value", 0) for e in sdc_series)
            by_detector = "  ".join(
                f"{e['labels'].get('detector', '?')}={int(e.get('value', 0))}"
                for e in sorted(sdc_series, key=lambda e: str(e["labels"]))
            )
            recovered = _value(snapshot, "repro_sdc_recoveries_total") or 0
            tiles = _value(snapshot, "repro_sdc_tiles_reexecuted_total") or 0
            lines.append(
                f"silent corruption: {int(total)} detection(s) [{by_detector}], "
                f"{int(recovered)} recovered in-run, "
                f"{int(tiles)} tile(s) re-executed"
            )
        shm = _value(snapshot, "repro_shm_bytes_published_total")
        if shm:
            lines.append(f"shared memory published: {shm / 1e6:.2f} MB")
        sup = {
            e["labels"].get("bucket", "?"): e.get("value", 0.0)
            for e in _series(snapshot, "repro_supervisor_seconds")
        }
        if sup:
            lines.append(
                "supervisor seconds: "
                + "  ".join(f"{k}={v:.3f}" for k, v in sorted(sup.items()))
            )
    if journal is not None:
        lines.append(
            f"journal: {journal['records']} verified record(s), "
            f"{journal['elapsed_seconds']:.2f}s span"
            + (", batch ended" if journal["ended"] else ", in flight")
            + (
                f", {journal['resumes']} resume(s)"
                if journal["resumes"]
                else ""
            )
        )
        if journal["corrupt_tail"]:
            lines.append(f"journal corruption: {journal['corrupt_tail']}")
        sdc = journal.get("sdc") or {}
        if sdc.get("records"):
            lines.append(
                f"silent corruption: {sdc['records']} journaled event(s), "
                f"{sdc['recovered']} recovered in-run, "
                f"{sdc['tiles_reexecuted']} tile(s) re-executed"
            )
        if journal.get("storage_degraded"):
            lines.append(
                f"storage degraded: {journal['storage_degraded']} ENOSPC "
                "event(s) — journal suspended mid-batch"
            )
        if journal["statuses"]:
            lines.append(
                "terminal statuses: "
                + "  ".join(
                    f"{k}={v}" for k, v in sorted(journal["statuses"].items())
                )
            )
        for tenant, stats in sorted(journal["tenants"].items()):
            tput = stats.get("throughput_per_s")
            lines.append(
                f"tenant {tenant}: {stats['completed']}/{stats['admitted']} "
                f"completed"
                + (f", {stats['failed']} failed" if stats["failed"] else "")
                + (f", {tput:.2f} jobs/s" if tput else "")
            )
    if not lines:
        lines.append("no metrics.json and no journal — nothing to report")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.jobs.status",
        description="Render pool health of a (live or finished) batch directory.",
    )
    parser.add_argument("batch_dir", help="batch working directory")
    parser.add_argument(
        "--journal", action="store_true",
        help="ignore metrics.json and reconstruct everything from the journal",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable dump of both sources instead of the rendering",
    )
    args = parser.parse_args(argv)
    batch_dir = Path(args.batch_dir)
    if not batch_dir.exists():
        print(f"no such batch directory: {batch_dir}", file=sys.stderr)
        return 1
    snapshot = None if args.journal else load_status(batch_dir)
    journal = journal_stats(batch_dir)
    if snapshot is None and journal is None:
        print(
            f"{batch_dir}: neither {METRICS_NAME} nor {JOURNAL_NAME} is readable",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps({"snapshot": snapshot, "journal": journal}, indent=2))
    else:
        print(render_status(snapshot, journal))
    return 0


if __name__ == "__main__":
    sys.exit(main())
