"""Finite-difference weight generation (Fornberg's algorithm).

Generates the stencil coefficients used throughout the DSL and the hand-tuned
NumPy kernels: centred weights of arbitrary derivative and accuracy order, and
staggered-grid weights evaluated at half points (needed by the elastic
velocity--stress scheme).

Reference: B. Fornberg, "Generation of Finite Difference Formulas on
Arbitrarily Spaced Grids", Mathematics of Computation 51 (1988).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "fornberg_weights",
    "central_weights",
    "central_offsets",
    "staggered_weights",
    "second_derivative_weights",
    "stencil_radius",
]


def fornberg_weights(deriv: int, offsets: Sequence[float], x0: float = 0.0) -> np.ndarray:
    """FD weights for the *deriv*-th derivative at *x0* on nodes *offsets*.

    Parameters
    ----------
    deriv:
        Derivative order ``m >= 0`` (0 gives interpolation weights).
    offsets:
        Node positions (in units of the grid spacing), need not be uniform.
    x0:
        Evaluation point (0.0 for grid-aligned, 0.5 for staggered).

    Returns
    -------
    ndarray of float64, one weight per node; the derivative is
    ``sum(w[i] * f(offsets[i])) / h**deriv``.
    """
    alpha = np.asarray(offsets, dtype=np.float64)
    n = len(alpha)
    if deriv < 0:
        raise ValueError("derivative order must be non-negative")
    if n <= deriv:
        raise ValueError(
            f"need at least {deriv + 1} nodes for derivative order {deriv}, got {n}"
        )
    if len(set(alpha.tolist())) != n:
        raise ValueError("stencil nodes must be distinct")

    m = deriv
    delta = np.zeros((m + 1, n, n), dtype=np.float64)
    delta[0, 0, 0] = 1.0
    c1 = 1.0
    for j in range(1, n):
        c2 = 1.0
        for k in range(j):
            c3 = alpha[j] - alpha[k]
            c2 *= c3
            for mu in range(min(j, m) + 1):
                delta[mu, j, k] = (
                    (alpha[j] - x0) * delta[mu, j - 1, k]
                    - (mu * delta[mu - 1, j - 1, k] if mu > 0 else 0.0)
                ) / c3
        for mu in range(min(j, m) + 1):
            delta[mu, j, j] = (c1 / c2) * (
                (mu * delta[mu - 1, j - 1, j - 1] if mu > 0 else 0.0)
                - (alpha[j - 1] - x0) * delta[mu, j - 1, j - 1]
            )
        c1 = c2
    return delta[m, n - 1, :].copy()


def central_offsets(space_order: int) -> Tuple[int, ...]:
    """Symmetric integer node offsets for an order-*space_order* stencil."""
    if space_order < 2 or space_order % 2:
        raise ValueError(f"space order must be a positive even integer, got {space_order}")
    r = space_order // 2
    return tuple(range(-r, r + 1))


@lru_cache(maxsize=None)
def central_weights(deriv: int, space_order: int) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
    """Centred weights of accuracy *space_order* for the *deriv*-th derivative.

    Returns ``(offsets, weights)``; tiny round-off residues are snapped to 0 so
    the symbolic layer drops them.
    """
    offsets = central_offsets(space_order)
    w = fornberg_weights(deriv, offsets, 0.0)
    w[np.abs(w) < 1e-12] = 0.0
    return offsets, tuple(float(x) for x in w)


@lru_cache(maxsize=None)
def staggered_weights(deriv: int, space_order: int, side: int = 1) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
    """Weights for the *deriv*-th derivative evaluated at a half point.

    ``side=+1`` evaluates at ``x + 1/2`` using nodes symmetric about the half
    point (``-r+1 .. r`` for radius ``r = space_order//2``); ``side=-1``
    evaluates at ``x - 1/2`` (nodes ``-r .. r-1``).  This is the first-order
    staggered-grid operator of the velocity--stress elastic scheme.
    """
    if space_order < 2 or space_order % 2:
        raise ValueError(f"space order must be a positive even integer, got {space_order}")
    if side not in (1, -1):
        raise ValueError("side must be +1 or -1")
    r = space_order // 2
    if side == 1:
        offsets = tuple(range(-r + 1, r + 1))
        x0 = 0.5
    else:
        offsets = tuple(range(-r, r))
        x0 = -0.5
    w = fornberg_weights(deriv, offsets, x0)
    w[np.abs(w) < 1e-12] = 0.0
    return offsets, tuple(float(x) for x in w)


def second_derivative_weights(space_order: int) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
    """Convenience wrapper: centred second-derivative weights."""
    return central_weights(2, space_order)


def stencil_radius(space_order: int) -> int:
    """Half-width of a centred stencil of the given accuracy order."""
    if space_order < 2 or space_order % 2:
        raise ValueError(f"space order must be a positive even integer, got {space_order}")
    return space_order // 2
