"""Stencil kernels and finite-difference coefficient machinery."""
from .coefficients import (
    central_offsets,
    central_weights,
    fornberg_weights,
    second_derivative_weights,
    staggered_weights,
    stencil_radius,
)

__all__ = [
    "fornberg_weights",
    "central_weights",
    "central_offsets",
    "staggered_weights",
    "second_derivative_weights",
    "stencil_radius",
]
