"""Kernel-IR linter over compiled sweeps.

Static checks at two levels:

* **equation level** (any engine): out-of-bounds stencil footprint vs the
  declared halo (``E101``), non-pointwise writes (``E102``), intra-sweep
  aliasing reads at nonzero radius (``E401``), duplicate ``(field, time)``
  writes within a sweep (``E402``), and dtype narrowing through the store
  (``W201``, via the abstract NEP 50 promotion lattice of
  :mod:`repro.verify.absint.dtypes` — the message names the statement and the
  exact promotion chain that produced the wider dtype).
* **kernel level** (fused engine): the structured three-address program
  (``kernel.__program__``) is analysed by the whole-program scratch passes of
  :mod:`repro.verify.absint.liveness` — a read of a slot never written in
  this kernel observes stale pooled memory from some earlier sweep
  (``E301``, naming the producing sweep); a value stored to a slot and never
  consumed is a dead statement (``W302``).  :func:`analyse_kernel_source`
  remains as the text-level fallback (and keeps synthetic kernel sources
  testable without compiling one).

Error-severity findings reject the fused bind: :meth:`Operator._build_sweeps`
raises :class:`~repro.errors.KernelLintError` (an
:class:`~repro.errors.EngineCompilationError`), so the engine ladder degrades
fused -> kernel -> interp exactly as for any compilation failure, and strict
mode surfaces the diagnostics.

Run from the command line as ``python -m repro.lint <example|--all> [--json]``
(see :mod:`repro.lint`).
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..ir.dependencies import read_accesses, written_access

__all__ = [
    "Diagnostic",
    "LintReport",
    "analyse_kernel_source",
    "lint_equations",
    "lint_bound_sweeps",
    "lint_operator",
]


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    code: str  # "E101", "W302", ...
    severity: str  # "error" | "warning"
    message: str
    sweep: Optional[int] = None
    statement: Optional[str] = None
    field: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "sweep": self.sweep,
            "statement": self.statement,
            "field": self.field,
        }

    def render(self) -> str:
        where = f"sweep {self.sweep}: " if self.sweep is not None else ""
        return f"{self.code} [{self.severity}] {where}{self.message}"


@dataclass
class LintReport:
    """All findings for one operator."""

    name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: whole-program scratch analysis, when the fused kernels compiled
    #: (a :class:`repro.verify.absint.liveness.LivenessReport`)
    scratch: Optional[object] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "scratch": self.scratch.to_dict() if self.scratch is not None else None,
        }

    def render(self) -> str:
        lines = [
            f"{self.name}: "
            f"{'OK' if self.ok else 'FAIL'} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings)"
        ]
        lines.extend("  " + d.render() for d in self.diagnostics)
        return "\n".join(lines)


# -- kernel-source analysis -----------------------------------------------------

_CALL_RE = re.compile(r"^np\.(\w+)\((.*)\)$")
_STORE_RE = re.compile(r"^(\w+)\[\.\.\.\] = (\w+)$")
_SLOT_RE = re.compile(r"^s\d+$")
_OUT_RE = re.compile(r"^o\d+$")


def analyse_kernel_source(source: str, sweep: Optional[int] = None) -> List[Diagnostic]:
    """Scratch-slot liveness analysis of a fused three-address kernel.

    Parses the generated ``kernel.__source__`` (``np.ufunc(a, b, out)``
    instructions and ``oN[...] = sK`` stores) and tracks every ``sN`` scratch
    slot: reads before any write in this kernel observe *stale pooled
    memory* (the pool hands out buffers shared across sweeps) -> ``E301``;
    writes whose value is never consumed are dead statements -> ``W302``.
    """
    diags: List[Diagnostic] = []
    written: set = set()
    pending: Dict[str, str] = {}  # slot -> instruction that last wrote it

    def read_of(tok: str, line: str) -> None:
        if not _SLOT_RE.match(tok):
            return
        if tok not in written:
            diags.append(
                Diagnostic(
                    "E301",
                    "error",
                    f"instruction {line!r} reads scratch slot {tok} before "
                    "any write in this kernel: the pooled buffer holds stale "
                    "data from another sweep",
                    sweep=sweep,
                    statement=line,
                )
            )
            written.add(tok)  # report each stale slot once
        pending.pop(tok, None)

    def write_of(tok: str, line: str) -> None:
        if not _SLOT_RE.match(tok):
            return
        prev = pending.get(tok)
        if prev is not None:
            diags.append(
                Diagnostic(
                    "W302",
                    "warning",
                    f"dead statement: {prev!r} writes scratch slot {tok} "
                    f"but {line!r} overwrites it before any read",
                    sweep=sweep,
                    statement=prev,
                )
            )
        written.add(tok)
        pending[tok] = line

    for raw in source.splitlines():
        line = raw.strip()
        if (
            not line
            or line.startswith("def ")
            or line.endswith("= slots")
            or line.endswith("= outs")
            or line.endswith("= views")
        ):
            continue
        m = _STORE_RE.match(line)
        if m:
            read_of(m.group(2), line)
            continue
        m = _CALL_RE.match(line)
        if m:
            args = [a.strip() for a in m.group(2).split(",")]
            out = args[-1]
            for a in args[:-1]:
                read_of(a, line)
            write_of(out, line)
            continue
    for slot, line in pending.items():
        diags.append(
            Diagnostic(
                "W302",
                "warning",
                f"dead statement: {line!r} writes scratch slot {slot} "
                "whose value is never read",
                sweep=sweep,
                statement=line,
            )
        )
    return diags


# -- equation-level checks ------------------------------------------------------


def _abstract_dtype(rhs) -> "tuple[Optional[str], List[str]]":
    """The dtype of *rhs* under the abstract NEP 50 promotion lattice, plus
    the promotion chain (every step where the accumulated dtype widened)."""
    from .absint.dtypes import expr_dtype

    try:
        return expr_dtype(rhs, lambda a: a.function.dtype)
    except (TypeError, ValueError):
        return None, []  # unbound symbols etc.: other checks own that failure


def lint_equations(eqs, sweep: Optional[int] = None) -> List[Diagnostic]:
    """Halo-footprint, pointwise-write, aliasing and dtype checks on the
    (possibly dt-bound) equations of one sweep."""
    diags: List[Diagnostic] = []
    produced: set = set()
    for eq in eqs:
        w = written_access(eq)
        reads = read_accesses(eq)
        for a in reads:
            halo = getattr(a.function, "halo", 0)
            bad = [(d, s) for d, s in a.space_offsets if abs(s) > halo]
            if bad:
                dims = ", ".join(f"{d}{s:+d}" for d, s in bad)
                diags.append(
                    Diagnostic(
                        "E101",
                        "error",
                        f"stencil footprint exceeds the declared halo of "
                        f"{a.function.name!r} (halo={halo}): offsets {dims} "
                        f"in {eq}",
                        sweep=sweep,
                        statement=str(eq),
                        field=a.function.name,
                    )
                )
        if w.radius > 0:
            diags.append(
                Diagnostic(
                    "E102",
                    "error",
                    f"non-pointwise write {eq.lhs} (radius {w.radius}): "
                    "explicit FD sweeps must write at the iteration point",
                    sweep=sweep,
                    statement=str(eq),
                    field=w.function.name,
                )
            )
        for a in reads:
            key = (a.function.name, a.time_offset)
            if key in produced and a.radius > 0:
                diags.append(
                    Diagnostic(
                        "E401",
                        "error",
                        f"intra-sweep aliasing read: {eq} reads "
                        f"{a.function.name}[t+{a.time_offset}] at radius "
                        f"{a.radius} although an earlier equation of the same "
                        "sweep writes that slot — the read crosses the box "
                        "boundary into not-yet-computed data",
                        sweep=sweep,
                        statement=str(eq),
                        field=a.function.name,
                    )
                )
        wkey = (w.function.name, w.time_offset)
        if wkey in produced:
            diags.append(
                Diagnostic(
                    "E402",
                    "error",
                    f"duplicate write to {w.function.name}[t+{w.time_offset}] "
                    "within one sweep: the earlier statement is dead",
                    sweep=sweep,
                    statement=str(eq),
                    field=w.function.name,
                )
            )
        produced.add(wkey)
        from .absint.dtypes import is_weak

        elem, chain = _abstract_dtype(eq.rhs)
        out_dtype = np.dtype(eq.lhs.function.dtype).name
        # weak scalars adapt to the stored dtype under NEP 50: no narrowing
        if elem is not None and not is_weak(elem) and elem != out_dtype:
            trace = " ; ".join(chain) if chain else "leaf dtype, no promotions"
            diags.append(
                Diagnostic(
                    "W201",
                    "warning",
                    f"store narrows/casts: {eq} evaluates to {elem} but "
                    f"{eq.lhs.function.name!r} holds {out_dtype} "
                    f"(promotion chain: {trace})",
                    sweep=sweep,
                    statement=str(eq),
                    field=eq.lhs.function.name,
                )
            )
    return diags


# -- entry points ----------------------------------------------------------------


def _scratch_analysis(report: LintReport, entries) -> None:
    """Whole-program scratch analysis over ``(sweep, program, source)`` rows.

    Sweeps with a structured three-address program are analysed together by
    the cross-sweep liveness passes (sweep indices in the findings are
    remapped back to the caller's numbering); sweeps that only expose rendered
    source fall back to the text-level :func:`analyse_kernel_source`.
    """
    compiled = [(j, p) for j, p, _ in entries if p is not None]
    if compiled:
        from .absint.liveness import analyse_programs

        live = analyse_programs([p for _, p in compiled])
        remap = {i: j for i, (j, _) in enumerate(compiled)}
        live.findings = [
            dataclasses.replace(
                f, sweep=remap.get(f.sweep, f.sweep) if f.sweep is not None else None
            )
            for f in live.findings
        ]
        report.diagnostics.extend(f.to_diagnostic() for f in live.findings)
        report.scratch = live
    for j, p, source in entries:
        if p is None and source is not None:
            report.diagnostics.extend(analyse_kernel_source(source, sweep=j))


def lint_bound_sweeps(bound_sweeps, name: str = "Kernel") -> LintReport:
    """Lint already-bound sweeps (the fused rung of the engine ladder)."""
    report = LintReport(name=name)
    entries = []
    for j, sw in enumerate(bound_sweeps):
        report.diagnostics.extend(lint_equations(sw.eqs, sweep=j))
        entries.append((j, sw.kernel_program(), sw.kernel_source()))
    _scratch_analysis(report, entries)
    return report


def lint_operator(op, dt: float = 1.0) -> LintReport:
    """Lint *op*: equation-level checks on every sweep, plus scratch-slot
    analysis of the fused kernels when the fused engine compiles.

    Binds ``dt`` and the grid spacings exactly as
    :meth:`~repro.ir.operator.Operator.apply` does, so the analysis sees the
    very expressions the engines execute.
    """
    from ..dsl.symbols import Number, Symbol
    from ..errors import EngineCompilationError
    from ..execution.evalbox import BoundSweep

    report = LintReport(name=op.name)
    subs = {Symbol("dt"): Number(float(dt))}
    for sym, val in op.grid.spacing_map().items():
        subs[sym] = Number(float(val))
    entries = []
    for j, sweep in enumerate(op.sweeps):
        eqs = [e.subs(subs) for e in sweep.eqs]
        report.diagnostics.extend(lint_equations(eqs, sweep=j))
        try:
            sw = BoundSweep(eqs, op.grid, engine="fused")
        except EngineCompilationError as exc:
            report.diagnostics.append(
                Diagnostic(
                    "W001",
                    "warning",
                    f"fused engine failed to compile sweep {j} ({exc}); "
                    "scratch-slot analysis skipped (execution would degrade "
                    "down the engine ladder)",
                    sweep=j,
                )
            )
            continue
        except ValueError as exc:
            report.diagnostics.append(
                Diagnostic(
                    "E001",
                    "error",
                    f"sweep {j} fails equation validation: {exc}",
                    sweep=j,
                )
            )
            continue
        entries.append((j, sw.kernel_program(), sw.kernel_source()))
    _scratch_analysis(report, entries)
    return report
