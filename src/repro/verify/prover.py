"""The schedule-legality prover.

Given (operator, schedule), :func:`prove_schedule` either returns a
:class:`~repro.verify.certificate.LegalityCertificate` — one checked
inequality per dependence edge — or raises
:class:`~repro.errors.ScheduleLegalityError` carrying a concrete
:class:`~repro.verify.certificate.Counterexample` that names two conflicting
statement instances ``(t, tile, point)``.

The wavefront legality condition, per dependence edge
---------------------------------------------------

Order the sweep instances of a time tile ``(t0,s0), (t0,s1), ...,
(t0+1,s0), ...`` and give each the cumulative lag of
:func:`repro.core.scheduler.instance_lags`; each instance executes on the
tile window shifted left by its lag, space tiles ascending.  For an edge with
time distance ``k`` (< tile height; larger ``k`` crosses a time-tile barrier)
between sweeps ``j_src -> j_snk``, the two instances sit ``k*nsweeps +
(j_snk - j_src)`` positions apart, so their lag gap is the fixed quantity
:func:`repro.core.scheduler.lag_span` — and the edge is legal iff that gap
covers the edge's spatial reach along every skewed dimension:

* **flow** (write then read at offsets ``d``): by the time the reader's
  window ``[X0-L_r, X1-L_r)`` runs, the writer has covered everything below
  ``X1 - L_w`` — all reads resolve iff ``L_r - L_w >= max(d, 0)`` per skewed
  dim (reads at negative offsets look into even older tiles).
* **anti** (read then slot-reusing write one buffer cycle later): the writer
  must not overwrite a point a *later* tile's reader still needs:
  ``L_w - L_r >= max(-d, 0)`` per skewed dim.
* **output** (slot reuse between writes): pointwise, gap >= 0, always holds.

Off-the-grid sparse operators have *non-affine* footprints — the support
corners of a source are not a function of the iteration point — so no finite
lag gap covers them: the paper's Fig. 4b illegality.  The prover rejects them
statically under :class:`~repro.core.scheduler.WavefrontSchedule` and builds
the counterexample from the actual source support and tile geometry: a
source whose support straddles a tile-window boundary is injected by the
earlier tile's instance, then the later tile's stencil assignment to the same
``(t, point)`` destroys the contribution (a lost update).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.scheduler import (
    NaiveSchedule,
    Schedule,
    WavefrontSchedule,
    instance_lags,
    lag_span,
)
from ..dsl.functions import Injection
from ..dsl.interpolation import support_points
from ..dsl.symbols import Indexed
from ..errors import ScheduleLegalityError
from ..ir.dependencies import wavefront_angle
from .certificate import (
    CheckedDependence,
    Counterexample,
    InstanceRef,
    LegalityCertificate,
)
from .dependence import Dependence, compute_dependences, statements_for

__all__ = ["prove_schedule", "resolve_sparse_mode", "offgrid_counterexample"]


def resolve_sparse_mode(sparse_mode: str, schedule: Schedule) -> str:
    """The operator's sparse-mode policy: 'auto' precomputes exactly when the
    schedule tiles time (mirrors :meth:`repro.ir.operator.Operator._bind`)."""
    if sparse_mode == "auto":
        return "precomputed" if isinstance(schedule, WavefrontSchedule) else "offgrid"
    if sparse_mode not in ("offgrid", "precomputed"):
        raise ValueError(f"unknown sparse mode {sparse_mode!r}")
    return sparse_mode


def _first_point(grid) -> Tuple[int, ...]:
    return tuple(s // 2 for s in grid.shape)


def _full_tile(grid) -> Tuple[Tuple[int, int], ...]:
    return tuple((0, s) for s in grid.shape)


def _instance_positions(
    dep: Dependence, nsweeps: int
) -> Tuple[int, int]:
    """(sweep of source, instance-position gap sink - source) for *dep*."""
    j_src = dep.source.sweep
    j_snk = dep.sink.sweep
    return j_src, dep.time_distance * nsweeps + (j_snk - j_src)


def _check_edge(
    dep: Dependence,
    radii: Tuple[int, ...],
    skewed: Tuple[str, ...],
    height: int,
    wavefront: bool,
) -> CheckedDependence:
    src = (dep.source.sweep, dep.source.index, dep.source.role)
    snk = (dep.sink.sweep, dep.sink.index, dep.sink.role)
    if not wavefront:
        # sequential schedules execute instances in exactly the dependence
        # order; the only inconsistency a statement system can carry is a
        # same-timestep edge pointing against program order (time_distance<0
        # edges model reads of genuinely future steps, which sequential
        # buffers resolve to stale data exactly as the seed semantics did)
        return CheckedDependence(
            kind=dep.kind,
            function=dep.function,
            source=src,
            sink=snk,
            time_distance=max(dep.time_distance, 0),
            distance=dep.distance,
            required=0,
            available=0,
            cross_tile=True,
            affine=True,  # off-grid ops run after full sweeps: always legal
        )
    if dep.time_distance < 0:
        return CheckedDependence(
            kind=dep.kind,
            function=dep.function,
            source=src,
            sink=snk,
            time_distance=dep.time_distance,
            distance=dep.distance,
            required=0,
            available=0,
            affine=dep.affine,
        )
    j_src, gap_count = _instance_positions(dep, len(radii))
    if dep.time_distance >= height:
        # the two instances always land in different time tiles; a full
        # barrier separates them
        return CheckedDependence(
            kind=dep.kind,
            function=dep.function,
            source=src,
            sink=snk,
            time_distance=dep.time_distance,
            distance=dep.distance,
            required=0,
            available=0,
            cross_tile=True,
            affine=dep.affine,
        )
    if gap_count < 0 or (
        gap_count == 0 and dep.source.index >= dep.sink.index
    ):
        # the sink instance runs before (or is) the source instance under any
        # lag assignment: a future read
        required = 1
        available = 0
    else:
        # gap_count == 0 is the same instance: statements execute in program
        # order within it, so pointwise edges (required 0) are satisfied and
        # any nonzero skewed reach crosses the window boundary (violation)
        if dep.kind == "flow":
            required = max(
                (dep.distance_along(d) for d in skewed), default=0
            )
            required = max(required, 0)
        elif dep.kind == "anti":
            required = max(
                (-dep.distance_along(d) for d in skewed), default=0
            )
            required = max(required, 0)
        else:  # output: pointwise slot reuse
            required = 0
        available = lag_span(radii, j_src, gap_count)
    return CheckedDependence(
        kind=dep.kind,
        function=dep.function,
        source=src,
        sink=snk,
        time_distance=dep.time_distance,
        distance=dep.distance,
        required=required,
        available=available,
        affine=dep.affine,
    )


def _violation_counterexample(
    op, schedule: Schedule, dep: Dependence, checked: CheckedDependence
) -> Counterexample:
    """Concrete conflicting instances for a failed affine edge."""
    grid = op.grid
    point = _first_point(grid)
    if isinstance(schedule, WavefrontSchedule):
        tile_a = tuple(
            (0, t) for t in schedule.tile
        ) + tuple((0, s) for s in grid.shape[len(schedule.tile):])
        tile_b = tile_a
    else:
        tile_a = tile_b = _full_tile(grid)
    if dep.time_distance < 0:
        # future read: the sink (reader) at t consumes data the source
        # (writer) only produces at t + |k|
        reader = InstanceRef(0, dep.sink.sweep, tile_a, point, dep.sink.role)
        writer = InstanceRef(
            -dep.time_distance, dep.source.sweep, tile_b, point, dep.source.role
        )
        reason = (
            f"instance reads {dep.function}[t+{-dep.time_distance}] before any "
            "schedule can have produced it (future read)"
        )
        return Counterexample("flow", dep.function, reader, writer, reason)
    reason = (
        f"lag gap {checked.available} does not cover the edge's spatial reach "
        f"{checked.required} along the skewed dimensions"
    )
    writer = InstanceRef(0, dep.source.sweep, tile_a, point, dep.source.role)
    reader = InstanceRef(
        dep.time_distance, dep.sink.sweep, tile_b, point, dep.sink.role
    )
    return Counterexample(dep.kind, dep.function, writer, reader, reason)


def offgrid_counterexample(
    op, schedule: WavefrontSchedule, sparse_op
) -> Counterexample:
    """The paper's Fig. 4b conflict, made concrete for *sparse_op*.

    Searches the actual source support corners against the lag-shifted tile
    windows of every instance of the owning sweep: a support straddling a
    window boundary along a skewed dimension yields a manifest lost-update —
    the off-the-grid scatter fired by the window containing the source's base
    corner writes a corner point in the *next* window, whose stencil
    assignment (executed later, same timestep) then overwrites it.  When the
    given placement straddles no boundary, the nearest would-be conflict is
    returned with ``manifest=False``.
    """
    grid = op.grid
    sparse = sparse_op.sparse
    indices, _weights = support_points(sparse.coordinates, grid)
    j = op._sweep_index_for(sparse_op.field.name, sparse_op.time_offset)
    radii = tuple(op.sweep_radii)
    lags = instance_lags(radii, schedule.height)
    nsweeps = len(radii)
    nskew = len(schedule.tile)
    role_first = (
        "injection" if isinstance(sparse_op, Injection) else "interpolation"
    )

    def window(coord: int, extent: int, lag: int) -> Tuple[int, int]:
        # windows along a skewed dim are [k*T - lag, k*T - lag + T)
        k = (coord + lag) // extent
        return (k * extent - lag, k * extent - lag + extent)

    def tile_of(point, lag) -> Tuple[Tuple[int, int], ...]:
        box = tuple(
            window(point[d], schedule.tile[d], lag) for d in range(nskew)
        )
        return box + tuple((0, s) for s in grid.shape[nskew:])

    best: Optional[Counterexample] = None
    for dt in range(schedule.height):
        lag = lags[dt * nsweeps + j]
        for s in range(indices.shape[0]):
            corners = indices[s]
            base = corners[0]
            for d in range(nskew):
                extent = schedule.tile[d]
                lo_w = window(int(base[d]), extent, lag)
                spread = corners[:, d].max() - base[d]
                if spread <= 0:
                    continue
                if int(base[d]) + int(spread) < lo_w[1]:
                    continue  # whole support inside one window along d
                # pick the corner that crossed into the next window
                over = corners[corners[:, d] >= lo_w[1]]
                point = tuple(int(v) for v in over[0])
                first = InstanceRef(
                    t=dt,
                    sweep=j,
                    tile=tile_of(tuple(int(v) for v in base), lag),
                    point=point,
                    role=role_first,
                )
                second = InstanceRef(
                    t=dt,
                    sweep=j,
                    tile=tile_of(point, lag),
                    point=point,
                    role="stencil",
                )
                if isinstance(sparse_op, Injection):
                    reason = (
                        f"source {s} has support corners on both sides of the "
                        f"tile-window boundary at x{d}={lo_w[1]}: the "
                        "off-the-grid scatter fired from "
                        "the earlier window injects the corner, then the "
                        "later window's stencil assignment to the same "
                        "(t, point) destroys the contribution; precompute "
                        "the injection (sparse_mode='precomputed') to make "
                        "it grid-aligned and window-local"
                    )
                    kind = "output"
                else:
                    reason = (
                        f"receiver {s} gathers corners on both sides of the "
                        f"tile-window boundary at x{d}={lo_w[1]}: the corner "
                        "in the later window has not been written for this "
                        "timestep when the earlier window gathers; "
                        "precompute the interpolation "
                        "(sparse_mode='precomputed')"
                    )
                    kind = "flow"
                return Counterexample(
                    kind, sparse_op.field.name, first, second, reason
                )
    # no straddle with this exact placement: report the nearest would-be
    # conflict (the class of schedules is still illegal — a legal schedule
    # may not depend on where the user happens to put the sources)
    base = tuple(int(v) for v in indices[0, 0])
    lag = lags[j]
    boundary = window(base[0], schedule.tile[0], lag)[1]
    point = (boundary,) + base[1:]
    first = InstanceRef(0, j, tile_of(base, lag), point, role_first)
    second = InstanceRef(0, j, tile_of(point, lag), point, "stencil")
    return Counterexample(
        "output" if isinstance(sparse_op, Injection) else "flow",
        sparse_op.field.name,
        first,
        second,
        "off-the-grid support is not a function of the iteration point: a "
        "source placed one point further would straddle the window boundary "
        f"at x0={boundary}; precompute the sparse operator "
        "(sparse_mode='precomputed') to make it grid-aligned",
        manifest=False,
    )


def prove_schedule(
    op,
    schedule: Optional[Schedule] = None,
    sparse_mode: str = "auto",
) -> LegalityCertificate:
    """Prove (or refute) the legality of running *op* under *schedule*.

    Returns a :class:`LegalityCertificate` with one checked inequality per
    dependence edge; raises :class:`~repro.errors.ScheduleLegalityError`
    (carrying a :class:`Counterexample`) when the schedule is illegal.
    """
    schedule = schedule or NaiveSchedule()
    mode = resolve_sparse_mode(sparse_mode, schedule)
    wavefront = isinstance(schedule, WavefrontSchedule)
    aligned = mode == "precomputed"

    grid = op.grid
    dims = tuple(d.name for d in grid.dimensions)
    skewed = dims[: len(schedule.tile)] if wavefront else ()
    radii = tuple(op.sweep_radii)
    height = schedule.height if wavefront else 1

    # the paper's headline rejection first: off-the-grid sparse operators
    # under wavefront blocking, with a concrete counterexample
    if wavefront and not aligned:
        offgrid = op.injections() + op.interpolations()
        if offgrid:
            ce = offgrid_counterexample(op, schedule, offgrid[0])
            raise ScheduleLegalityError(
                "wavefront temporal blocking requires grid-aligned sparse "
                "operators (sparse_mode='precomputed'): off-the-grid "
                "injection inside space-time tiles violates data "
                f"dependencies — {ce.describe()}",
                t=ce.first.t,
                tile=ce.first.tile,
                field=ce.field,
                counterexample=ce,
                schedule=schedule.describe(),
            )

    sweep_of = {}
    for sp in op.sparse_ops:
        try:
            sweep_of[id(sp)] = op._sweep_index_for(sp.field.name, sp.time_offset)
        except ValueError:
            pass  # unattachable sparse op: Operator.apply raises its own error
    stmts = statements_for(
        op.sweeps,
        injections=op.injections(),
        interpolations=op.interpolations(),
        sweep_of=sweep_of,
        aligned=aligned,
    )
    # field name -> time-buffer count, harvested from every Indexed leaf and
    # sparse-operator target (slot-reuse anti/output dependences need it)
    buffers = {}
    for eq in op.eqs:
        for ix in (eq.lhs, *eq.rhs.atoms(Indexed)):
            fn = ix.function
            if hasattr(fn, "buffers"):
                buffers[fn.name] = fn.buffers
    for sp in op.sparse_ops:
        buffers.setdefault(sp.field.name, sp.field.buffers)

    deps = compute_dependences(stmts, buffers)
    checked: List[CheckedDependence] = []
    for dep in deps:
        edge = _check_edge(dep, radii, skewed, height, wavefront)
        checked.append(edge)
        if not edge.satisfied:
            ce = _violation_counterexample(op, schedule, dep, edge)
            future = dep.time_distance < 0 or (
                dep.time_distance == 0 and dep.source.position > dep.sink.position
            )
            raise ScheduleLegalityError(
                (
                    f"equation system reads future data: {ce.describe()}; "
                    "wavefront blocking is not legal for this system"
                    if future
                    else f"schedule fails the legality proof: {ce.describe()}"
                ),
                t=ce.first.t,
                tile=ce.first.tile,
                field=ce.field,
                counterexample=ce,
                schedule=schedule.describe(),
            )

    return LegalityCertificate(
        operator=op.name,
        schedule=schedule.describe(),
        sparse_mode=mode,
        dims=dims,
        skewed_dims=tuple(skewed),
        sweep_radii=radii,
        wavefront_angle=wavefront_angle(op.sweeps),
        lags=tuple(instance_lags(radii, height)) if wavefront else (),
        dependences=tuple(checked),
    )
