"""Abstract-interpretation pass framework over the kernel IR.

Layered like a small compiler-analysis toolkit:

* :mod:`repro.verify.absint.domain` — the abstract domains: integer
  :class:`~repro.verify.absint.domain.Interval`\\ s (with widening),
  :class:`~repro.verify.absint.domain.AffineForm`\\ s over named symbolic
  parameters (exact interval images — the source of the bounds analysis'
  zero-false-positive guarantee) and the admissible
  :class:`~repro.verify.absint.domain.ParamSpace` a proof quantifies over.
* :mod:`repro.verify.absint.framework` — :class:`DataflowPass` /
  :func:`run_pass` / :func:`fixpoint`: directional dataflow over the
  three-address :class:`~repro.ir.nodes.TAProgram`, including cyclic
  whole-program iteration around one timestep's kernel sequence.
* :mod:`repro.verify.absint.bounds` — :func:`prove_bounds`: parametric
  halo-safety certificates (or concrete counterexamples) for whole schedule
  families.
* :mod:`repro.verify.absint.dtypes` — the NEP 50 promotion lattice,
  :func:`expr_dtype` promotion chains (powering the linter's W201) and the
  :class:`DtypePass` slot-typing consistency check.
* :mod:`repro.verify.absint.liveness` — whole-program scratch-slot liveness,
  interference and the slab coloring that shrinks the shared scratch pool
  (consumed by :func:`repro.ir.passes.plan_scratch_slots`).
"""

from .bounds import build_param_space, prove_bounds
from .domain import AffineForm, Interval, ParamSpace
from .dtypes import DtypePass, expr_dtype, promote, ufunc_result
from .framework import DataflowPass, Finding, PassResult, fixpoint, run_pass
from .growth import GrowthPass, interval_ufunc, prove_growth, read_interval
from .liveness import LivenessReport, PoolLivenessPass, analyse_programs

__all__ = [
    "AffineForm",
    "Interval",
    "ParamSpace",
    "DataflowPass",
    "Finding",
    "PassResult",
    "run_pass",
    "fixpoint",
    "build_param_space",
    "prove_bounds",
    "DtypePass",
    "expr_dtype",
    "promote",
    "ufunc_result",
    "GrowthPass",
    "prove_growth",
    "interval_ufunc",
    "read_interval",
    "LivenessReport",
    "PoolLivenessPass",
    "analyse_programs",
]
