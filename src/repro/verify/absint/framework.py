"""The dataflow pass framework over the three-address kernel IR.

A :class:`DataflowPass` declares a direction, an initial state, a transfer
function over :class:`~repro.ir.nodes.TAInstr` and a lattice join;
:func:`run_pass` drives it over one straight-line kernel program, and
:func:`fixpoint` drives it over the *cyclic* whole-program sequence of a
timestep — sweep 0, sweep 1, ..., sweep 0, ... — propagating the exit state
of each kernel into the next and iterating until the entry states stabilise
(with an optional widening hook for infinite-height domains; the production
dtype and liveness lattices are finite, so plain iteration terminates).

Passes report :class:`Finding` records — the absint-side mirror of the
linter's ``Diagnostic`` (converted by :meth:`Finding.to_diagnostic`, kept
separate so the pass layer has no import cycle with the linter that calls
it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from ...ir.nodes import TAProgram

__all__ = ["Finding", "DataflowPass", "PassResult", "run_pass", "fixpoint"]


@dataclass(frozen=True)
class Finding:
    """One analysis finding, convertible to a linter diagnostic."""

    code: str
    severity: str  # "error" | "warning"
    message: str
    sweep: Optional[int] = None
    statement: Optional[str] = None
    field: Optional[str] = None

    def to_diagnostic(self):
        from ..linter import Diagnostic

        return Diagnostic(
            code=self.code,
            severity=self.severity,
            message=self.message,
            sweep=self.sweep,
            statement=self.statement,
            field=self.field,
        )


class DataflowPass:
    """Base class: a direction, a lattice, and a transfer function.

    Subclasses override :meth:`initial`, :meth:`transfer` and :meth:`join`
    (plus :meth:`widen` for infinite-height domains).  States must be
    treated as immutable values: ``transfer`` returns a new state.
    """

    #: "forward" (entry -> exit) or "backward" (exit -> entry)
    direction = "forward"
    #: human-readable pass name (reports, telemetry)
    name = "dataflow"

    def initial(self, program: TAProgram) -> Any:
        raise NotImplementedError

    def transfer(self, state: Any, instr, index: int, program: TAProgram) -> Any:
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def widen(self, older: Any, newer: Any) -> Any:
        return newer

    def equal(self, a: Any, b: Any) -> bool:
        return a == b


@dataclass
class PassResult:
    """Per-instruction states of one pass over one kernel program.

    ``pre[i]``/``post[i]`` bracket instruction ``i`` in *program order*
    regardless of the pass direction; ``entry``/``exit`` are the states at
    the program boundaries in *dataflow* order (for a backward pass the
    entry state is the one at the end of the program).
    """

    program: TAProgram
    pre: List[Any] = field(default_factory=list)
    post: List[Any] = field(default_factory=list)
    entry: Any = None
    exit: Any = None


def run_pass(pass_: DataflowPass, program: TAProgram, entry: Any = None) -> PassResult:
    """Drive *pass_* across one straight-line program.

    *entry* overrides the pass's initial state (used by :func:`fixpoint` to
    chain kernels); straight-line code needs exactly one sweep over the
    instructions per invocation.
    """
    state = pass_.initial(program) if entry is None else entry
    n = len(program.instrs)
    pre: List[Any] = [None] * n
    post: List[Any] = [None] * n
    indices = range(n) if pass_.direction == "forward" else range(n - 1, -1, -1)
    result = PassResult(program=program, entry=state)
    for i in indices:
        pre[i] = state
        state = pass_.transfer(state, program.instrs[i], i, program)
        post[i] = state
    if pass_.direction == "backward":
        pre, post = post, pre  # report in program order
    result.pre, result.post, result.exit = pre, post, state
    return result


def fixpoint(
    pass_: DataflowPass,
    programs: Sequence[TAProgram],
    max_rounds: int = 16,
) -> List[PassResult]:
    """Iterate *pass_* around the cyclic kernel sequence of one timestep.

    The exit state of each kernel feeds the next (wrapping from the last
    sweep back to the first, as execution does every timestep) until every
    entry state is stable.  After ``max_rounds`` un-stabilised rounds the
    pass's :meth:`~DataflowPass.widen` is applied to force convergence —
    unreachable for the finite production lattices, present so interval
    domains can ride the same driver.
    """
    order = list(programs) if pass_.direction == "forward" else list(programs)[::-1]
    entries: List[Any] = [pass_.initial(p) for p in order]
    results: List[PassResult] = [run_pass(pass_, p) for p in order]
    for round_ in range(max_rounds + 1):
        changed = False
        carry = results[-1].exit
        for i, program in enumerate(order):
            merged = pass_.join(entries[i], carry)
            if round_ == max_rounds:
                merged = pass_.widen(entries[i], merged)
            if not pass_.equal(merged, entries[i]):
                changed = True
                entries[i] = merged
                results[i] = run_pass(pass_, program, entry=merged)
            carry = results[i].exit
        if not changed:
            break
    if pass_.direction == "backward":
        results = results[::-1]
    return results
