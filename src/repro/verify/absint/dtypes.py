"""NumPy dtype-promotion lattice and propagation passes.

Replaces the linter's zero-size-specimen evaluation: instead of *executing*
every expression on empty arrays to observe result dtypes, promotion is
modelled as a finite lattice over

* concrete dtypes (``float32`` < ``float64`` under ``np.promote_types``), and
* *weak* Python scalars (``weak_int``/``weak_float``), which under NEP 50
  adapt to the partner operand's dtype instead of forcing a promotion,

with per-ufunc result rules (true division always lands in an inexact type;
the transcendental ufuncs resolve integer inputs to the smallest exactly
representable float, which is ``np.result_type(dtype, float16)``).

Two consumers:

* :func:`expr_dtype` — bottom-up propagation over a symbolic expression tree,
  recording the **promotion chain** (every step where the accumulated dtype
  changed), which the linter's W201 message now names verbatim.
* :class:`DtypePass` — a forward dataflow pass over the three-address
  program, typing every scratch slot; disagreement with the dtype the
  emitter actually assigned (``kernel.__slotspec__``) is an internal
  inconsistency reported as ``E203`` (and tested never to fire).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...dsl.symbols import Add, Call, Expr, Indexed, Mul, Number, Pow, Symbol
from .framework import DataflowPass, Finding

__all__ = [
    "WEAK_INT",
    "WEAK_FLOAT",
    "is_weak",
    "promote",
    "ufunc_result",
    "expr_dtype",
    "DtypePass",
]

WEAK_INT = "weak_int"
WEAK_FLOAT = "weak_float"
_TRANSCENDENTAL = {"sin", "cos", "tan", "sqrt", "exp"}


def is_weak(elem: Optional[str]) -> bool:
    return elem in (WEAK_INT, WEAK_FLOAT)


def describe(elem: Optional[str]) -> str:
    if elem == WEAK_INT:
        return "int (weak scalar)"
    if elem == WEAK_FLOAT:
        return "float (weak scalar)"
    return str(elem)


def weak_of(value) -> str:
    """The lattice element of a Python numeric literal."""
    return WEAK_INT if isinstance(value, int) and not isinstance(value, bool) else WEAK_FLOAT


def concretise(elem: str) -> str:
    """The dtype a weak scalar takes when *forced* concrete (NEP 50 defaults)."""
    if elem == WEAK_INT:
        return np.dtype(int).name  # the platform default integer
    if elem == WEAK_FLOAT:
        return "float64"
    return elem


def promote(a: str, b: str) -> str:
    """NEP 50 promotion of two lattice elements."""
    if is_weak(a) and is_weak(b):
        return WEAK_FLOAT if WEAK_FLOAT in (a, b) else WEAK_INT
    if is_weak(a):
        a, b = b, a
    if is_weak(b):
        dt = np.dtype(a)
        if b == WEAK_INT:
            return a  # integer scalars adapt to any numeric dtype
        if dt.kind in "fc":
            return a  # float scalars adapt to any inexact dtype
        return "float64"  # float scalar forces an integer array inexact
    return np.promote_types(a, b).name


def _inexact(elem: str) -> str:
    """Force *elem* inexact, as NumPy's true division does."""
    if elem == WEAK_INT:
        return WEAK_FLOAT
    if elem == WEAK_FLOAT:
        return elem
    if np.dtype(elem).kind in "fc":
        return elem
    return "float64"


def ufunc_result(op: str, elems: Sequence[str]) -> str:
    """The result lattice element of ``np.op(*elems)``."""
    if op == "negative":
        return elems[0]
    if op in _TRANSCENDENTAL:
        a = elems[0]
        if is_weak(a):
            return "float64"  # np.sin(2) etc. resolves to the default float
        return np.result_type(np.dtype(a), np.float16).name
    acc = elems[0]
    for e in elems[1:]:
        acc = promote(acc, e)
    if op in ("divide", "true_divide"):
        return _inexact(acc)
    return acc


def expr_dtype(
    expr: Expr,
    dtype_of: Callable[[Indexed], np.dtype],
    _shorten: int = 48,
) -> Tuple[str, List[str]]:
    """Propagate dtypes bottom-up through *expr*; return the result element
    plus the promotion chain.

    The chain starts at the seed operand and records every step where the
    accumulated dtype changed — exactly the trace a W201 message needs to
    explain *which* subexpression forced the promotion the store then
    narrows away.  Mirrors the engines' evaluation order (left-associative
    chains; ``x**-1`` as ``1.0/x``; small integer powers as repeated
    multiplication), so the result matches what execution produces.
    """
    chain: List[str] = []
    seed: List[str] = []  # first leaf evaluated, recorded once

    def short(e: Expr) -> str:
        s = str(e)
        return s if len(s) <= _shorten else s[: _shorten - 3] + "..."

    def step(sym: str, desc: str, old: str, new: str) -> None:
        if new != old:
            chain.append(f"{sym} {desc}: {describe(old)} -> {describe(new)}")

    def chained(sym: str, op: str, args: Sequence[Expr]) -> str:
        acc = rec(args[0])
        for term in args[1:]:
            t = rec(term)
            new = ufunc_result(op, [acc, t])
            step(sym, f"{short(term)} ({describe(t)})", acc, new)
            acc = new
        return acc

    def rec(e: Expr) -> str:
        if isinstance(e, Number):
            elem = weak_of(e.value)
            if not seed:
                seed.append(f"{short(e)}: {describe(elem)}")
            return elem
        if isinstance(e, Indexed):
            elem = np.dtype(dtype_of(e)).name
            if not seed:
                seed.append(f"{short(e)}: {describe(elem)}")
            return elem
        if isinstance(e, Add):
            return chained("+", "add", e.args)
        if isinstance(e, Mul):
            return chained("*", "multiply", e.args)
        if isinstance(e, Pow):
            exp = e.exponent
            base = rec(e.base)
            if isinstance(exp, Number):
                v = exp.value
                if v == -1:
                    new = ufunc_result("divide", [WEAK_FLOAT, base])
                    step("1/", short(e.base), base, new)
                    return new
                if isinstance(v, int) and 0 < v <= 4:
                    return base  # repeated multiplication keeps the dtype
                new = ufunc_result("power", [base, weak_of(v)])
                step("**", repr(v), base, new)
                return new
            t = rec(exp)
            new = ufunc_result("power", [base, t])
            step("**", f"{short(exp)} ({describe(t)})", base, new)
            return new
        if isinstance(e, Call):
            arg = rec(e.argument)
            new = ufunc_result(e.name, [arg])
            step(e.name, short(e.argument), arg, new)
            return new
        if isinstance(e, Symbol):
            raise ValueError(f"unbound symbol {e.name!r} in dtype propagation")
        raise TypeError(f"cannot type node {type(e).__name__}")

    result = rec(expr)
    return result, seed + chain


class DtypePass(DataflowPass):
    """Forward slot-typing pass over one three-address program.

    The state maps every scratch slot to its inferred lattice element; at
    each instruction the result element is computed from the operand
    elements by :func:`ufunc_result`.  A concrete inferred dtype that
    disagrees with the dtype the emitter assigned the slot (the specimen
    result recorded in the program's slot table) is an ``E203`` internal
    inconsistency — the lattice and the emitter must agree, or the
    specimen-free W201 check would be unsound.  Store narrowing events are
    recorded on :attr:`narrowed` for the analysis report.
    """

    direction = "forward"
    name = "dtypes"

    def __init__(self, sweep: Optional[int] = None):
        self.sweep = sweep
        self.findings: List[Finding] = []
        self.narrowed: List[Tuple[int, str, str]] = []

    def initial(self, program) -> Dict[str, str]:
        return {}

    def join(self, a: Dict[str, str], b: Dict[str, str]) -> Dict[str, str]:
        out = dict(a)
        for name, elem in b.items():
            out[name] = promote(elem, out[name]) if name in out else elem
        return out

    def _elem(self, operand, state: Dict[str, str], program) -> str:
        if operand.kind == "scalar":
            try:
                value = int(operand.name)
            except ValueError:
                value = float(operand.name)
            return weak_of(value)
        if operand.kind == "slot":
            return state.get(operand.name) or operand.dtype
        return operand.dtype

    def transfer(self, state: Dict[str, str], instr, index: int, program):
        elems = [self._elem(a, state, program) for a in instr.args]
        if instr.op == "store":
            value = elems[0]
            out = instr.out.dtype
            if out is not None and not is_weak(value) and value != out:
                self.narrowed.append((index, value, out))
            return state
        result = ufunc_result(instr.op, elems)
        if instr.out.kind == "slot":
            declared = instr.out.dtype
            if is_weak(result):
                # an all-scalar instruction: the emitter concretised it via
                # the specimen; adopt its choice (execution ground truth)
                result = declared
            elif declared is not None and result != declared:
                self.findings.append(
                    Finding(
                        "E203",
                        "error",
                        f"abstract dtype {result} disagrees with the "
                        f"emitter's slot dtype {declared} at {instr.render()!r}: "
                        "the promotion lattice and the specimen evaluation "
                        "diverged",
                        sweep=self.sweep,
                        statement=instr.render(),
                    )
                )
                result = declared
            state = dict(state)
            state[instr.out.name] = result
        elif instr.out.kind == "out":
            out = instr.out.dtype
            if out is not None and not is_weak(result) and result != out:
                self.narrowed.append((index, result, out))
        return state
