"""Whole-program scratch-slot liveness, interference and slab coloring.

The per-kernel scratch analysis (linter codes E301/W302) asked one question:
does any instruction read a slot this kernel never wrote?  This module
extends it to the **whole program** — the cyclic sequence of fused kernels
one timestep executes, all drawing slots from one shared
:class:`~repro.ir.pycodegen.ScratchPool` — by running a backward liveness
pass around the kernel cycle with the framework's :func:`fixpoint` driver.
Pool buffers are identified by ``(dtype, per-dtype index)``, exactly the
``__slotspec__`` identity under which sweeps share them.

Deliverables:

* **Findings** — E301 escalated to whole-program form (a stale read names
  the *producing sweep* whose leftover value would be observed) and W302
  dead stores, now derived from the typed IR instead of re-parsed source.
* **Interference graph** — edges between same-dtype slots of one kernel
  whose live ranges overlap (slots of different kernels never interfere:
  kernels run to completion, and the liveness proof shows no value crosses
  the boundary).
* **Coloring** — a greedy (optimal for interval graphs) per-dtype coloring
  that :func:`repro.ir.passes.plan_scratch_slots` turns into the slab plan
  shrinking the pool from ``shapes x slots`` buffers to ``ncolors`` slabs.
  The plan is only emitted when :attr:`LivenessReport.safe_for_slab` — the
  proof *licenses* the optimisation; an unproven program keeps the
  conservative per-shape pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ...ir.nodes import TAProgram
from .framework import DataflowPass, Finding, fixpoint, run_pass

__all__ = ["PoolLivenessPass", "LivenessReport", "analyse_programs"]

PoolId = Tuple[str, int]  # (dtype name, per-dtype slot index)


def slot_pool_ids(program: TAProgram) -> Dict[str, PoolId]:
    """Map each slot name to its shared-pool identity, mirroring exactly how
    :func:`repro.ir.pycodegen.compile_sweep` builds ``__slotspec__``."""
    per_dtype: Dict[str, int] = {}
    out: Dict[str, PoolId] = {}
    for name, dtype in program.slots:
        idx = per_dtype.get(dtype, 0)
        per_dtype[dtype] = idx + 1
        out[name] = (dtype, idx)
    return out


class PoolLivenessPass(DataflowPass):
    """Backward liveness of shared pool buffers across the kernel cycle.

    The state is the set of pool identities whose *current content* will be
    read before being overwritten.  A non-empty live-in at some kernel's
    entry is precisely a cross-sweep stale read: the kernel consumes
    whatever the previous writer of that pooled buffer left behind.
    """

    direction = "backward"
    name = "pool-liveness"

    def initial(self, program: TAProgram) -> FrozenSet[PoolId]:
        return frozenset()

    def join(self, a: FrozenSet[PoolId], b: FrozenSet[PoolId]) -> FrozenSet[PoolId]:
        return a | b

    def transfer(self, state, instr, index, program) -> FrozenSet[PoolId]:
        ids = slot_pool_ids(program)
        live = set(state)
        if instr.op != "store" and instr.out.kind == "slot":
            live.discard(ids[instr.out.name])
        for arg in instr.args:
            if arg.kind == "slot":
                live.add(ids[arg.name])
        return frozenset(live)


@dataclass
class LivenessReport:
    """Everything the whole-program scratch analysis proved."""

    #: E301/W302 findings over the typed IR
    findings: List[Finding] = field(default_factory=list)
    #: per sweep: slot name -> (first def index, last use index) in the kernel
    ranges: List[Dict[str, Tuple[int, int]]] = field(default_factory=list)
    #: interference edges (sweep, slot, slot), lexicographic slot order
    edges: List[Tuple[int, str, str]] = field(default_factory=list)
    #: per sweep, per slot (declaration order): the slab color
    colors: List[Tuple[int, ...]] = field(default_factory=list)
    #: dtype name -> number of slabs needed
    colors_per_dtype: Dict[str, int] = field(default_factory=dict)
    #: live-in pool buffers per sweep from the fixpoint (must all be empty)
    live_in: List[FrozenSet[PoolId]] = field(default_factory=list)

    @property
    def safe_for_slab(self) -> bool:
        """True iff every kernel writes every slot before reading it — the
        proof obligation that makes slab sharing bit-identical."""
        return not any(f.code == "E301" for f in self.findings) and not any(
            self.live_in
        )

    @property
    def total_slots(self) -> int:
        return sum(len(c) for c in self.colors)

    @property
    def total_colors(self) -> int:
        return sum(self.colors_per_dtype.values())

    def to_dict(self) -> dict:
        return {
            "safe_for_slab": self.safe_for_slab,
            "total_slots": self.total_slots,
            "total_colors": self.total_colors,
            "colors_per_dtype": dict(sorted(self.colors_per_dtype.items())),
            "colors": [list(c) for c in self.colors],
            "edges": [[s, a, b] for s, a, b in self.edges],
            "ranges": [
                {name: list(r) for name, r in sorted(ranges.items())}
                for ranges in self.ranges
            ],
            "findings": [f.to_diagnostic().to_dict() for f in self.findings],
        }


def _kernel_scan(
    program: TAProgram, sweep: int, producers: Dict[PoolId, int]
) -> Tuple[Dict[str, Tuple[int, int]], List[Finding]]:
    """Forward def/use scan of one kernel: live ranges plus E301/W302."""
    findings: List[Finding] = []
    ids = slot_pool_ids(program)
    first_def: Dict[str, int] = {}
    last_use: Dict[str, int] = {}
    pending: Dict[str, str] = {}  # slot -> rendered instr of unread write
    stale_reported: set = set()

    for i, instr in enumerate(program.instrs):
        line = instr.render()
        for arg in instr.args:
            if arg.kind != "slot":
                continue
            name = arg.name
            if name not in first_def and name not in stale_reported:
                producer = producers.get(ids[name])
                origin = (
                    f" (last written by sweep {producer}'s kernel)"
                    if producer is not None and producer != sweep
                    else ""
                )
                findings.append(
                    Finding(
                        "E301",
                        "error",
                        f"instruction {line!r} reads scratch slot {name} "
                        "before any write in this kernel: the pooled buffer "
                        f"holds stale data from another sweep{origin}",
                        sweep=sweep,
                        statement=line,
                    )
                )
                stale_reported.add(name)
            last_use[name] = i
            pending.pop(name, None)
        if instr.op != "store" and instr.out.kind == "slot":
            name = instr.out.name
            prev = pending.get(name)
            if prev is not None:
                findings.append(
                    Finding(
                        "W302",
                        "warning",
                        f"dead statement: {prev!r} writes scratch slot {name} "
                        f"but {line!r} overwrites it before any read",
                        sweep=sweep,
                        statement=prev,
                    )
                )
            first_def.setdefault(name, i)
            pending[name] = line
    for name, line in pending.items():
        findings.append(
            Finding(
                "W302",
                "warning",
                f"dead statement: {line!r} writes scratch slot {name} "
                "whose value is never read",
                sweep=sweep,
                statement=line,
            )
        )
    ranges = {
        name: (d, max(last_use.get(name, d), d)) for name, d in first_def.items()
    }
    for name in last_use:
        # stale-read slots have uses but no def; range starts at first use
        if name not in ranges:
            ranges[name] = (0, last_use[name])
    return ranges, findings


def analyse_programs(programs: Sequence[TAProgram]) -> LivenessReport:
    """Run the whole-program scratch analysis over one timestep's kernels."""
    report = LivenessReport()

    # which sweep's kernel last writes each pooled buffer, in cycle order —
    # the "producer" a stale read would observe
    producers: Dict[PoolId, int] = {}
    for j, program in enumerate(programs):
        ids = slot_pool_ids(program)
        for instr in program.instrs:
            if instr.op != "store" and instr.out.kind == "slot":
                producers[ids[instr.out.name]] = j

    for j, program in enumerate(programs):
        ranges, findings = _kernel_scan(program, j, producers)
        report.ranges.append(ranges)
        report.findings.extend(findings)

    # cross-sweep fixpoint: live-in buffers at each kernel entry must be empty
    if programs:
        results = fixpoint(PoolLivenessPass(), programs)
        # a backward pass's state at the *start* of the program (program
        # order) is pre[0]: what must be live when the kernel begins
        report.live_in = [
            r.pre[0] if r.pre else frozenset() for r in results
        ]

    # interference graph: same kernel, same dtype, overlapping live ranges
    for j, program in enumerate(programs):
        dtypes = dict(program.slots)
        names = [n for n, _ in program.slots]
        ranges = report.ranges[j]
        for x in range(len(names)):
            for y in range(x + 1, len(names)):
                a, b = names[x], names[y]
                if dtypes[a] != dtypes[b]:
                    continue
                if a not in ranges or b not in ranges:
                    continue
                (alo, ahi), (blo, bhi) = ranges[a], ranges[b]
                if alo <= bhi and blo <= ahi:
                    report.edges.append((j, a, b))

    # greedy coloring per dtype (optimal on interval graphs), in first-def
    # order; colors are global across sweeps so equal colors share one slab
    adjacency: Dict[Tuple[int, str], set] = {}
    for j, a, b in report.edges:
        adjacency.setdefault((j, a), set()).add(b)
        adjacency.setdefault((j, b), set()).add(a)
    colors_per_dtype: Dict[str, int] = {}
    for j, program in enumerate(programs):
        assignment: Dict[str, int] = {}
        ranges = report.ranges[j]
        order = sorted(
            (n for n, _ in program.slots),
            key=lambda n: ranges.get(n, (len(program.instrs), 0))[0],
        )
        dtypes = dict(program.slots)
        for name in order:
            taken = {
                assignment[n]
                for n in adjacency.get((j, name), ())
                if n in assignment
            }
            color = 0
            while color in taken:
                color += 1
            assignment[name] = color
            colors_per_dtype[dtypes[name]] = max(
                colors_per_dtype.get(dtypes[name], 0), color + 1
            )
        report.colors.append(tuple(assignment[n] for n, _ in program.slots))
    report.colors_per_dtype = colors_per_dtype
    return report
