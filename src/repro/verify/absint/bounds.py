"""Parametric in-bounds analysis: halo-safety proofs for schedule families.

For every read and write of every sweep, this module proves that the access
stays inside the padded storage of its field — not for one concrete grid, but
for the **whole admissible parameter family**: every interior extent
``N_d >= 1``, every tile shape, every wavefront height, every cumulative lag
the executors can produce.  The proof exploits two structural facts:

1. Every executor (naive, spatially blocked, wavefront) clips each iteration
   window to the interior ``[0, N_d)`` and skips empty windows, so the
   executed window is a subset of the interior *for every* tile origin, tile
   extent and lag — the window parameters drop out of the verification
   conditions symbolically, they are recorded in the certificate's
   :class:`~repro.verify.absint.domain.ParamSpace` only to state what the
   proof quantifies over.
2. An access at constant spatial offset ``s`` into a field padded by
   ``halo`` therefore touches padded-buffer indices
   ``[halo + lo + s, halo + hi + s)`` with ``[lo, hi) ⊆ [0, N_d)``; staying
   inside the padded extent ``N_d + 2*halo`` for the whole family reduces to
   the affine margins ``halo + s >= 0`` and ``halo - s >= 0``.

The margins are evaluated as :class:`~repro.verify.absint.domain.AffineForm`
images over the parameter box; every parameter occurs at most once in each
form, so interval evaluation is exact and the analysis has **zero false
positives** — a rejected access really escapes for some family member, and
:func:`prove_bounds` constructs that member as a concrete
:class:`~repro.verify.certificate.BoundsCounterexample` ``(schedule, t, tile,
index)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...core.scheduler import (
    NaiveSchedule,
    Schedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
)
from ...dsl.functions import TimeFunction
from ...ir.dependencies import Access, read_accesses, written_access
from ..certificate import (
    BoundsCertificate,
    BoundsCounterexample,
    CheckedBound,
    InstanceRef,
)
from .domain import AffineForm, ParamSpace

__all__ = ["build_param_space", "prove_bounds"]


def build_param_space(
    op, schedule: Optional[Schedule] = None, halos: Optional[Dict[str, int]] = None
) -> ParamSpace:
    """The admissible family a bounds certificate quantifies over.

    With ``schedule=None`` the family covers *every* schedule kind at once
    (tile extents, block extents, heights and lags all unbounded): the
    executors clip every window to the interior, so one proof covers the
    whole schedule zoo.  With a concrete schedule only that schedule's knobs
    are declared — the proof is identical, the certificate merely states a
    smaller quantification.
    """
    space = ParamSpace()
    dims = tuple(d.name for d in op.grid.dimensions)
    for d in dims:
        space.declare(f"N_{d}", 1, None, f"interior extent along {d} (any grid size)")
    for fname, h in sorted((halos or {}).items()):
        space.declare(
            f"halo_{fname}",
            h,
            h,
            f"halo padding of field {fname!r} (from its space order)",
        )
    angle = op.wavefront_angle
    if schedule is None or isinstance(schedule, WavefrontSchedule):
        rank = len(schedule.tile) if isinstance(schedule, WavefrontSchedule) else len(dims)
        for i in range(rank):
            space.declare(f"T_{i}", 1, None, "wavefront space-tile extent (any)")
        space.declare("H", 1, None, "time-tile height (any)")
        space.declare(
            "lag",
            0,
            None,
            f"cumulative wavefront lag; bounded by angle*(H-1)*nsweeps with "
            f"angle={angle}, but the clipped-window argument needs no bound",
        )
    if schedule is None or isinstance(schedule, SpatialBlockSchedule):
        rank = (
            len(schedule.block) if isinstance(schedule, SpatialBlockSchedule) else len(dims)
        )
        for i in range(rank):
            space.declare(f"B_{i}", 1, None, "spatial block extent (any)")
    return space


def _collect_halos(op) -> Dict[str, int]:
    halos: Dict[str, int] = {}
    for sweep in op.sweeps:
        for eq in sweep.eqs:
            for a in [written_access(eq)] + read_accesses(eq):
                halos[a.function.name] = getattr(a.function, "halo", 0)
    for s in op.sparse_ops:
        halos[s.field.name] = getattr(s.field, "halo", 0)
    return halos


def _space_checks(
    space: ParamSpace,
    sweep: int,
    statement: str,
    access: Access,
    role: str,
) -> List[CheckedBound]:
    """One :class:`CheckedBound` per spatial dimension of *access*."""
    fname = access.function.name
    halo = getattr(access.function, "halo", 0)
    out: List[CheckedBound] = []
    for dim, off in access.space_offsets:
        lo_form = AffineForm.param(f"halo_{fname}").shift(off)
        hi_form = AffineForm.param(f"halo_{fname}").shift(-off)
        lo_iv = lo_form.range_over(space)
        hi_iv = hi_form.range_over(space)
        out.append(
            CheckedBound(
                sweep=sweep,
                statement=statement,
                function=fname,
                role=role,
                dim=dim,
                offset=off,
                halo=halo,
                margin_lo=lo_iv.lo,
                margin_hi=hi_iv.lo,
                vc=(
                    f"0 <= {lo_form.describe()} and 0 <= {hi_form.describe()} "
                    f"for every executed window [lo, hi) ⊆ [0, N_{dim}) "
                    "(all tiles, heights, lags: executors clip to the interior)"
                ),
            )
        )
    return out


def _time_check(sweep: int, statement: str, access: Access, role: str) -> CheckedBound:
    fname = access.function.name
    off = access.time_offset
    return CheckedBound(
        sweep=sweep,
        statement=statement,
        function=fname,
        role=role,
        dim="t",
        offset=off,
        halo=0,
        margin_lo=0,
        margin_hi=0,
        vc=(
            f"(t {off:+d}) mod nbuf({fname}) ∈ [0, nbuf) — the circular "
            "time buffer makes every timestep index total"
        ),
        kind="time",
    )


def _counterexample(
    op,
    schedule: Optional[Schedule],
    sweep: int,
    access: Access,
    role: str,
    dim: str,
    offset: int,
) -> BoundsCounterexample:
    """Instantiate the family member on which the violating access escapes.

    Uses the operator's own grid (so the instance is directly runnable),
    timestep 0 and the first full interior box as the tile.  The escaping
    point sits on the violated side: the window's last interior point for an
    upper escape (``offset > halo`` — NumPy surfaces this as a clipped view /
    shape mismatch, a native backend as a read past the allocation), the
    first for a lower escape (``offset < -halo`` — NumPy *wraps silently* to
    the opposite end of the padded buffer, which is worse: wrong numerics
    with no exception).
    """
    fname = access.function.name
    halo = getattr(access.function, "halo", 0)
    dims = tuple(d.name for d in op.grid.dimensions)
    shape = tuple(int(n) for n in op.grid.shape)
    offs = dict(access.space_offsets)
    upper = offset > 0  # which padded edge the access escapes
    point = tuple(
        (shape[i] - 1 if upper else 0) if d == dim else 0 for i, d in enumerate(dims)
    )
    index = tuple(halo + p + offs.get(d, 0) for d, p in zip(dims, point))
    extent = tuple(n + 2 * halo for n in shape)
    tile = tuple((0, n) for n in shape)
    if upper:
        i = dims.index(dim)
        reason = (
            f"margin_hi = halo - offset = {halo - offset} < 0: the window's "
            f"last point {dim}={point[i]} resolves to padded index "
            f"{index[i]} >= extent {extent[i]}"
        )
    else:
        i = dims.index(dim)
        reason = (
            f"margin_lo = halo + offset = {halo + offset} < 0: the window's "
            f"first point {dim}=0 resolves to negative padded index "
            f"{index[i]}"
        )
    return BoundsCounterexample(
        schedule=(schedule or NaiveSchedule()).describe(),
        instance=InstanceRef(t=0, sweep=sweep, tile=tile, point=point, role=role),
        function=fname,
        dim=dim,
        offset=offset,
        halo=halo,
        index=index,
        extent=extent,
        reason=reason,
    )


def prove_bounds(
    op, schedule: Optional[Schedule] = None, sparse_mode: str = "auto"
) -> BoundsCertificate:
    """Prove every access of *op* in-bounds for the whole parameter family.

    Returns a :class:`~repro.verify.certificate.BoundsCertificate`; when some
    access escapes, the certificate carries the first violation's concrete
    :class:`~repro.verify.certificate.BoundsCounterexample` alongside the
    full table of checked (and violated) margins.  The caller decides whether
    a violation raises (:meth:`Operator._build_sweeps` wraps it in
    :class:`~repro.errors.BoundsProofError` on the fused rung).
    """
    from ..prover import resolve_sparse_mode

    halos = _collect_halos(op)
    space = build_param_space(op, schedule, halos=halos)
    dims = tuple(d.name for d in op.grid.dimensions)

    checks: Dict[Tuple, CheckedBound] = {}
    counterexample: Optional[BoundsCounterexample] = None

    def record(bound: CheckedBound, access: Access) -> None:
        nonlocal counterexample
        key = (
            bound.sweep,
            bound.statement,
            bound.function,
            bound.role,
            bound.dim,
            bound.offset,
            bound.kind,
        )
        checks.setdefault(key, bound)
        if not bound.satisfied and counterexample is None:
            counterexample = _counterexample(
                op, schedule, bound.sweep, access, bound.role, bound.dim, bound.offset
            )

    for j, sweep in enumerate(op.sweeps):
        for eq in sweep.eqs:
            statement = str(eq)
            accesses = [(written_access(eq), "write")]
            accesses += [(a, "read") for a in read_accesses(eq)]
            for access, role in accesses:
                if isinstance(access.function, TimeFunction):
                    record(_time_check(j, statement, access, role), access)
                for bound in _space_checks(space, j, statement, access, role):
                    record(bound, access)

    # sparse operators: grid-aligned (precomputed masks are built inside the
    # domain) or raw off-the-grid (coordinates validated in-domain, linear
    # support reaches at most the interior neighbours) — either way every
    # touched point is an interior point, i.e. an offset-0 access
    for sop, role in [(i, "inject") for i in op.injections()] + [
        (i, "receive") for i in op.interpolations()
    ]:
        j = op._sweep_index_for(sop.field.name, sop.time_offset)
        statement = repr(sop)
        fname = sop.field.name
        halo = halos.get(fname, 0)
        for dim in dims:
            record(
                CheckedBound(
                    sweep=j,
                    statement=statement,
                    function=fname,
                    role=role,
                    dim=dim,
                    offset=0,
                    halo=halo,
                    margin_lo=halo,
                    margin_hi=halo,
                    vc=(
                        "support points ⊆ interior (masks/coordinates are "
                        "validated in-domain), offset 0 relative to each "
                        "support point"
                    ),
                    kind="sparse",
                ),
                Access(sop.field, sop.time_offset, tuple((d, 0) for d in dims)),
            )

    resolved = resolve_sparse_mode(sparse_mode, schedule or NaiveSchedule())
    return BoundsCertificate(
        operator=op.name,
        schedule=schedule.describe() if schedule is not None else {"kind": "any"},
        sparse_mode=resolved,
        dims=dims,
        halos=dict(sorted(halos.items())),
        params=space.to_dict(),
        checks=tuple(checks.values()),
        counterexample=counterexample,
    )
