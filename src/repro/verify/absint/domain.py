"""Abstract domains for the pass framework: intervals, affine forms, and
admissible parameter spaces.

The parametric bounds analysis (:mod:`repro.verify.absint.bounds`) reasons
about index expressions that are *affine* in a set of named symbolic
parameters — grid extents, halos, tile extents, wavefront height and lag.
Because every parameter occurs at most once in such a form, evaluating it
over per-parameter intervals is **exact**, not merely sound: the interval
returned by :meth:`AffineForm.range_over` is precisely the image of the
admissible parameter box.  A verification condition "form >= 0 for the whole
family" therefore reduces to checking the interval's lower bound, with no
false positives — exactly the property the acceptance gate demands.

``None`` encodes the infinities (``lo=None`` is -inf, ``hi=None`` is +inf),
so unbounded families like "every grid extent >= 1" are first-class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["Interval", "AffineForm", "ParamSpace"]


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    return None if a is None or b is None else a + b


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``; ``None`` bounds are infinite."""

    lo: Optional[int]
    hi: Optional[int]

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @classmethod
    def point(cls, v: int) -> "Interval":
        return cls(int(v), int(v))

    @classmethod
    def at_least(cls, lo: int) -> "Interval":
        return cls(int(lo), None)

    @classmethod
    def top(cls) -> "Interval":
        return cls(None, None)

    # -- arithmetic (exact for independent operands) -----------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def __neg__(self) -> "Interval":
        return Interval(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def scale(self, k: int) -> "Interval":
        if k == 0:
            return Interval.point(0)
        lo = None if self.lo is None else k * self.lo
        hi = None if self.hi is None else k * self.hi
        return Interval(lo, hi) if k > 0 else Interval(hi, lo)

    def shift(self, c: int) -> "Interval":
        return self + Interval.point(c)

    # -- lattice -----------------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to infinity."""
        stable_lo = (
            self.lo is not None and newer.lo is not None and newer.lo >= self.lo
        )
        stable_hi = (
            self.hi is not None and newer.hi is not None and newer.hi <= self.hi
        )
        return Interval(self.lo if stable_lo else None, self.hi if stable_hi else None)

    def contains(self, v: int) -> bool:
        return (self.lo is None or v >= self.lo) and (self.hi is None or v <= self.hi)

    @property
    def nonnegative(self) -> bool:
        """Does every member of the interval satisfy ``>= 0``?"""
        return self.lo is not None and self.lo >= 0

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"

    def to_list(self) -> list:
        return [self.lo, self.hi]


@dataclass(frozen=True)
class AffineForm:
    """``const + sum(coeff_p * p)`` over named symbolic parameters.

    Immutable; coefficients with value 0 are dropped so structurally equal
    forms compare equal.
    """

    const: int = 0
    coeffs: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def of(cls, const: int = 0, **coeffs: int) -> "AffineForm":
        return cls(
            int(const),
            tuple(sorted((p, int(k)) for p, k in coeffs.items() if k != 0)),
        )

    @classmethod
    def param(cls, name: str, coeff: int = 1) -> "AffineForm":
        return cls.of(0, **{name: coeff})

    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def __add__(self, other: "AffineForm") -> "AffineForm":
        coeffs = self.coeff_map()
        for p, k in other.coeffs:
            coeffs[p] = coeffs.get(p, 0) + k
        return AffineForm.of(self.const + other.const, **coeffs)

    def __neg__(self) -> "AffineForm":
        return AffineForm.of(-self.const, **{p: -k for p, k in self.coeffs})

    def __sub__(self, other: "AffineForm") -> "AffineForm":
        return self + (-other)

    def shift(self, c: int) -> "AffineForm":
        return AffineForm(self.const + int(c), self.coeffs)

    def range_over(self, space: "ParamSpace") -> Interval:
        """The exact image of this form over the parameter box *space*.

        Every parameter occurs once, so interval evaluation introduces no
        over-approximation — the analysis has zero false positives by
        construction.
        """
        acc = Interval.point(self.const)
        for p, k in self.coeffs:
            acc = acc + space.interval(p).scale(k)
        return acc

    def describe(self) -> str:
        parts = [str(self.const)] if self.const or not self.coeffs else []
        for p, k in self.coeffs:
            if k == 1:
                parts.append(p)
            elif k == -1:
                parts.append(f"-{p}")
            else:
                parts.append(f"{k}*{p}")
        return " + ".join(parts).replace("+ -", "- ")


@dataclass
class ParamSpace:
    """The admissible family: one interval (plus description) per parameter.

    This is the domain the bounds certificates quantify over — "for **all**
    grid extents >= 1, tile extents >= 1, heights >= 1, lags in
    [0, angle*(height-1)] ..." — recorded so a serialised certificate states
    exactly which family it proves.
    """

    _params: Dict[str, Tuple[Interval, str]] = field(default_factory=dict)

    def declare(
        self,
        name: str,
        lo: Optional[int],
        hi: Optional[int],
        description: str = "",
    ) -> "ParamSpace":
        self._params[name] = (Interval(lo, hi), description)
        return self

    def interval(self, name: str) -> Interval:
        try:
            return self._params[name][0]
        except KeyError:
            raise KeyError(f"parameter {name!r} not declared in this family") from None

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __iter__(self) -> Iterator[str]:
        return iter(self._params)

    def witness(self) -> Dict[str, int]:
        """A minimal concrete member of the family (smallest finite bounds)."""
        out = {}
        for name, (iv, _) in self._params.items():
            if iv.lo is not None:
                out[name] = iv.lo
            elif iv.hi is not None:
                out[name] = iv.hi
            else:
                out[name] = 0
        return out

    def to_dict(self) -> dict:
        return {
            name: {"range": iv.to_list(), "description": desc}
            for name, (iv, desc) in sorted(self._params.items())
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ParamSpace":
        space = cls()
        for name, entry in d.items():
            lo, hi = entry["range"]
            space.declare(name, lo, hi, entry.get("description", ""))
        return space
