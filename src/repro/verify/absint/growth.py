"""Per-step amplitude-growth bounds via interval abstract interpretation.

The ABFT guard (:mod:`repro.runtime.abft`) needs one number per operator: a
bound ``G`` on how much a single timestep can amplify the state's max-norm,
so that at a time-tile boundary the runtime can assert
``|u|_exit <= slack * (G**h * |u|_entry + source energy)`` and attribute any
violation to silent data corruption.  Because every update is *linear* in
the wavefields, that bound is the image of the update expression under
interval arithmetic with the wavefield reads set to the unit interval
``[-1, 1]`` and the model reads set to their actual data range — exactly
the kind of question the absint framework answers.

Two evaluation vehicles, bit-aligned with the execution engines:

* :class:`GrowthPass` — a forward :class:`~repro.verify.absint.framework.
  DataflowPass` over the fused three-address program
  (:meth:`~repro.execution.evalbox.BoundSweep.kernel_program`), propagating
  one interval per scratch slot exactly as :class:`~repro.verify.absint.
  dtypes.DtypePass` propagates dtypes.
* an expression-tree interval evaluator for the non-fused engines (and as
  the fallback when no program is available), walking the bound equation's
  right-hand side directly.

:func:`prove_growth` runs whichever applies per sweep and assembles a
:class:`~repro.verify.certificate.GrowthCertificate` — the peer of
:class:`~repro.verify.certificate.BoundsCertificate` for the amplitude
invariant.  A division whose abstract denominator straddles zero yields an
infinite gain and an unsatisfied check: the certificate then cannot support
a runtime amplitude bound and the guard degrades to checksum-only mode.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...dsl.functions import TimeFunction
from ...dsl.symbols import Add, Call, Indexed, Mul, Number, Pow, Symbol
from ..certificate import CheckedGrowth, GrowthCertificate
from .framework import DataflowPass, run_pass

__all__ = ["GrowthPass", "prove_growth", "interval_ufunc", "read_interval"]

Interval = Tuple[float, float]

FULL: Interval = (-math.inf, math.inf)
UNIT: Interval = (-1.0, 1.0)


def _mul(a: Interval, b: Interval) -> Interval:
    products = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
    # IEEE 0 * inf is NaN; in interval arithmetic that corner is 0
    products = [0.0 if math.isnan(p) else p for p in products]
    return (min(products), max(products))


def _div(a: Interval, b: Interval) -> Interval:
    if b[0] <= 0.0 <= b[1]:
        return FULL
    return _mul(a, (1.0 / b[1], 1.0 / b[0]))


def _ipow(a: Interval, e: int) -> Interval:
    if e == 0:
        return (1.0, 1.0)
    if e < 0:
        return _div((1.0, 1.0), _ipow(a, -e))
    out = a
    for _ in range(e - 1):
        out = _mul(out, a)
    return out


def _exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return math.inf


def interval_ufunc(op: str, args: Sequence[Interval]) -> Interval:
    """The image of ``np.op`` over interval *args* (conservative)."""
    if op == "add":
        lo, hi = 0.0, 0.0
        for a in args:
            lo, hi = lo + a[0], hi + a[1]
        return (lo, hi)
    if op == "subtract":
        a, b = args
        return (a[0] - b[1], a[1] - b[0])
    if op == "multiply":
        acc = args[0]
        for b in args[1:]:
            acc = _mul(acc, b)
        return acc
    if op in ("divide", "true_divide"):
        return _div(args[0], args[1])
    if op == "negative":
        a = args[0]
        return (-a[1], -a[0])
    if op == "power":
        a, b = args
        if b[0] == b[1] and float(b[0]).is_integer():
            return _ipow(a, int(b[0]))
        if a[0] >= 0.0:
            return (a[0] ** b[0], a[1] ** b[1])
        return FULL
    if op in ("sin", "cos"):
        return UNIT
    if op == "tan":
        return FULL
    if op == "sqrt":
        a = args[0]
        return (math.sqrt(max(a[0], 0.0)), math.sqrt(max(a[1], 0.0)))
    if op == "exp":
        a = args[0]
        return (_exp(a[0]), _exp(a[1]))
    return FULL


def read_interval(access: Indexed) -> Interval:
    """The abstract value of one read: unit amplitude for wavefields, the
    actual data range for model/hoisted arrays (interior only — halo points
    of hoisted invariants may legitimately hold inf, and boxes never read
    them)."""
    func = access.function
    if isinstance(func, TimeFunction):
        return UNIT
    if hasattr(func, "materialise"):  # HoistedField: lazily computed buffer
        func.materialise()
        buf = func.data_with_halo
        h = func.halo
        arr = buf[tuple(slice(h, s - h) for s in buf.shape)]
    else:
        arr = func.data
    if arr.size == 0:
        return (0.0, 0.0)
    lo, hi = float(np.min(arr)), float(np.max(arr))
    if not (math.isfinite(lo) and math.isfinite(hi)):
        return FULL
    return (lo, hi)


class GrowthPass(DataflowPass):
    """Forward interval propagation over one fused three-address program.

    The state maps every scratch slot to its value interval; ``views`` binds
    the program's read operands (``v0, v1, ...``, in the sweep's read order)
    to their abstract values and ``consts`` binds the hoisted numeric
    constants (``_c0, ...``) from the kernel namespace.  Bounds of values
    stored to the output operands accumulate on :attr:`out_bounds`.
    """

    direction = "forward"
    name = "growth"

    def __init__(self, views: Dict[str, Interval], consts: Dict[str, float]):
        self.views = dict(views)
        self.consts = dict(consts)
        self.out_bounds: Dict[str, Interval] = {}

    def initial(self, program) -> Dict[str, Interval]:
        return {}

    def join(
        self, a: Dict[str, Interval], b: Dict[str, Interval]
    ) -> Dict[str, Interval]:
        out = dict(a)
        for name, iv in b.items():
            if name in out:
                out[name] = (min(out[name][0], iv[0]), max(out[name][1], iv[1]))
            else:
                out[name] = iv
        return out

    def _elem(self, operand, state: Dict[str, Interval]) -> Interval:
        if operand.kind == "view":
            return self.views.get(operand.name, FULL)
        if operand.kind == "scalar":
            v = float(operand.name)
            return (v, v)
        if operand.kind == "const":
            v = self.consts.get(operand.name)
            return (v, v) if v is not None else FULL
        return state.get(operand.name, FULL)

    def transfer(self, state: Dict[str, Interval], instr, index: int, program):
        if instr.op == "store":
            value = self._elem(instr.args[0], state)
        else:
            value = interval_ufunc(
                instr.op, [self._elem(a, state) for a in instr.args]
            )
        state = dict(state)
        state[instr.out.name] = value
        if instr.out.kind == "out":
            prev = self.out_bounds.get(instr.out.name)
            if prev is not None:
                value = (min(prev[0], value[0]), max(prev[1], value[1]))
            self.out_bounds[instr.out.name] = value
        return state


def _expr_interval(expr) -> Interval:
    """Interval image of a bound equation's rhs tree (non-fused engines)."""
    if isinstance(expr, Number):
        v = float(expr.value)
        return (v, v)
    if isinstance(expr, Indexed):
        return read_interval(expr)
    if isinstance(expr, Add):
        return interval_ufunc("add", [_expr_interval(a) for a in expr.children()])
    if isinstance(expr, Mul):
        return interval_ufunc(
            "multiply", [_expr_interval(a) for a in expr.children()]
        )
    if isinstance(expr, Pow):
        return interval_ufunc(
            "power",
            [_expr_interval(expr.base), _expr_interval(expr.exponent)],
        )
    if isinstance(expr, Call):
        return interval_ufunc(expr.name, [_expr_interval(expr.argument)])
    if isinstance(expr, Symbol):
        return FULL
    return FULL


def prove_growth(sweeps: Sequence, operator: str = "operator", dt: float = 1.0) -> GrowthCertificate:
    """Build a :class:`GrowthCertificate` for the bound *sweeps* of a plan.

    Fused sweeps are analysed through their three-address program with
    :class:`GrowthPass`; non-fused ones through direct interval evaluation
    of each bound equation's rhs.  Both see identical abstract inputs, so
    the certificate does not depend on the engine the run selects.
    """
    checks: List[CheckedGrowth] = []
    for j, sweep in enumerate(sweeps):
        program = sweep.kernel_program() if hasattr(sweep, "kernel_program") else None
        if program is not None:
            views = {
                f"v{i}": read_interval(a) for i, a in enumerate(sweep.reads)
            }
            consts = {
                name: float(np.asarray(sweep._kernel.__globals__[name]))
                for name, _dtype in program.consts
            }
            pass_ = GrowthPass(views, consts)
            run_pass(pass_, program)
            for i, lhs in enumerate(sweep.writes):
                lo, hi = pass_.out_bounds.get(f"o{i}", FULL)
                checks.append(
                    CheckedGrowth(
                        sweep=j,
                        field=lhs.function.name,
                        lo=lo,
                        hi=hi,
                        engine="absint",
                    )
                )
        else:
            for beq in sweep.beqs:
                lo, hi = _expr_interval(beq.rhs)
                checks.append(
                    CheckedGrowth(
                        sweep=j,
                        field=beq.lhs.function.name,
                        lo=lo,
                        hi=hi,
                        engine="interval",
                    )
                )
    return GrowthCertificate(operator=operator, dt=float(dt), checks=tuple(checks))
