"""Statement-level dependence analysis with per-dimension distance vectors.

This supersedes the radius-only summary of :mod:`repro.ir.dependencies`: every
statement of an operator — stencil equations, injection nests, interpolation
nests, and (optionally) the three-address CSE'd statements the fused engine
compiles — is reduced to explicit read/write :class:`AccessInfo` sets, and all
pairwise flow / anti / output dependences between statements are enumerated
with their per-dimension distance vectors.

Conventions
-----------
* A statement *instance* is (timestep ``t``, iteration point ``x``).  The
  stencil statement writing ``u[t+1, x]`` and reading ``u[t, x+d]`` yields a
  **flow** dependence with ``time_distance = 1`` and spatial component ``d``:
  the reader at iteration point ``x`` consumes the value produced by the
  writer's instance at iteration point ``x + d`` of ``time_distance`` steps
  earlier.
* **Anti** dependences are circular-buffer slot reuse: the writer of
  ``(f, t+w)`` overwrites the buffer slot that held ``(f, t+w-b)`` (``b`` time
  buffers), which an earlier instance may still need to read.
* **Output** dependences are two writes to the same buffer slot (same
  ``(field, time)`` within a step, or slot reuse ``b`` steps apart).

Sparse operators contribute accesses with ``kind="sparse"``: grid-aligned
(precomputed) injection/measurement is pointwise over the affected-point set
and behaves like a radius-0 access; raw off-the-grid operators have a
non-affine footprint (``affine=False``) — their support corners are not a
function of the iteration point — which is exactly what the wavefront
legality prover must reject (paper Fig. 4b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.functions import Injection, Interpolation, TimeFunction
from ..dsl.symbols import Indexed
from ..ir.dependencies import Sweep

__all__ = [
    "AccessInfo",
    "Statement",
    "Dependence",
    "classify_indexed",
    "statements_for",
    "fused_statements",
    "compute_dependences",
]


@dataclass(frozen=True)
class AccessInfo:
    """One access of a statement: field, time offset, spatial offsets."""

    function: str
    kind: str = "grid"  # "grid" | "sparse" | "scratch"
    is_time: bool = False  # accesses a circular time buffer
    time_offset: int = 0
    offsets: Tuple[Tuple[str, int], ...] = ()  # spatial (dim, shift) pairs
    affine: bool = True  # False: off-the-grid footprint (not a fn of x)

    @property
    def radius(self) -> int:
        if not self.offsets:
            return 0
        return max(abs(s) for _, s in self.offsets)

    def offset_along(self, dim: str) -> int:
        for d, s in self.offsets:
            if d == dim:
                return s
        return 0

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "kind": self.kind,
            "time_offset": self.time_offset,
            "offsets": {d: s for d, s in self.offsets},
            "affine": self.affine,
        }


@dataclass(frozen=True)
class Statement:
    """One statement in program order: role, position, read/write sets."""

    sweep: int  # owning sweep index
    index: int  # statement index within the sweep
    role: str  # "stencil" | "injection" | "interpolation" | "cse"
    text: str
    writes: Tuple[AccessInfo, ...]
    reads: Tuple[AccessInfo, ...]

    @property
    def position(self) -> Tuple[int, int]:
        return (self.sweep, self.index)

    def describe(self) -> str:
        return f"sweep {self.sweep} stmt {self.index} ({self.role}): {self.text}"


@dataclass(frozen=True)
class Dependence:
    """A dependence edge between two statements.

    ``source`` executes first in sequential (reference) order; ``sink``
    second.  ``time_distance`` is the number of timesteps separating the two
    instances (>= 0 for any causally executable system).  ``distance`` holds
    the spatial components: for a flow dependence these are the sink's read
    offsets ``d`` (the sink at point ``x`` consumes data produced at
    ``x + d``); for anti/output dependences they relate the conflicting slot
    accesses the same way.
    """

    kind: str  # "flow" | "anti" | "output"
    source: Statement
    sink: Statement
    function: str
    time_distance: int
    distance: Tuple[Tuple[str, int], ...]
    affine: bool = True

    def distance_along(self, dim: str) -> int:
        for d, s in self.distance:
            if d == dim:
                return s
        return 0

    @property
    def max_abs_distance(self) -> int:
        if not self.distance:
            return 0
        return max(abs(s) for _, s in self.distance)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "source": [self.source.sweep, self.source.index, self.source.role],
            "sink": [self.sink.sweep, self.sink.index, self.sink.role],
            "function": self.function,
            "time_distance": self.time_distance,
            "distance": {d: s for d, s in self.distance},
            "affine": self.affine,
        }


def classify_indexed(indexed: Indexed) -> AccessInfo:
    """Reduce one :class:`Indexed` leaf to an :class:`AccessInfo`."""
    func = indexed.function
    t_off = 0
    space: List[Tuple[str, int]] = []
    for name, shift in indexed.offset_map().items():
        if name == "t":
            t_off = shift
        else:
            space.append((name, shift))
    return AccessInfo(
        function=func.name,
        kind="grid",
        is_time=isinstance(func, TimeFunction),
        time_offset=t_off,
        offsets=tuple(sorted(space)),
    )


def _sparse_access(field_fn, time_offset: int, affine: bool) -> AccessInfo:
    return AccessInfo(
        function=field_fn.name,
        kind="sparse",
        is_time=isinstance(field_fn, TimeFunction),
        time_offset=int(time_offset),
        offsets=(),
        affine=affine,
    )


def statements_for(
    sweeps: Sequence[Sweep],
    injections: Sequence[Injection] = (),
    interpolations: Sequence[Interpolation] = (),
    sweep_of: Optional[Dict[int, int]] = None,
    aligned: bool = True,
) -> List[Statement]:
    """Program-order statement list of an operator.

    *sweep_of* maps ``id(sparse_op) -> sweep index`` (as computed by
    :meth:`repro.ir.operator.Operator._sweep_index_for`); without it sparse
    statements attach to the sweep writing/reading their field's time slot,
    falling back to the last sweep.  *aligned* states whether the sparse
    operators run in their precomputed grid-aligned form (affine, pointwise
    over the affected-point set) or raw off-the-grid (non-affine footprint).
    """
    stmts: List[Statement] = []
    counters = [0] * len(sweeps)
    for j, sweep in enumerate(sweeps):
        for eq in sweep.eqs:
            writes = (classify_indexed(eq.lhs),)
            reads = tuple(
                classify_indexed(ix) for ix in sorted(eq.rhs.atoms(Indexed), key=str)
            )
            stmts.append(
                Statement(j, counters[j], "stencil", str(eq), writes, reads)
            )
            counters[j] += 1

    def _sweep_for(op, writing: bool) -> int:
        if sweep_of is not None and id(op) in sweep_of:
            return sweep_of[id(op)]
        key = (op.field.name, op.time_offset)
        for j, sweep in enumerate(sweeps):
            if key in sweep.written_keys:
                return j
        return len(sweeps) - 1

    for inj in injections:
        j = _sweep_for(inj, writing=True)
        acc = _sparse_access(inj.field, inj.time_offset, affine=aligned)
        stmts.append(
            Statement(
                j,
                counters[j],
                "injection",
                f"{inj.field.name}[t+{inj.time_offset}, p] += "
                f"{'src_dcmp[t, SID[p]]' if aligned else 'w(p)*src[t]'}",
                (acc,),
                (),
            )
        )
        counters[j] += 1
    for itp in interpolations:
        j = _sweep_for(itp, writing=False)
        acc = _sparse_access(itp.field, itp.time_offset, affine=aligned)
        stmts.append(
            Statement(
                j,
                counters[j],
                "interpolation",
                f"rec[t+{itp.time_offset}] <- {itp.field.name}"
                f"[t+{itp.time_offset}, {'p' if aligned else 'w(p)'}]",
                (),
                (acc,),
            )
        )
        counters[j] += 1
    return stmts


def fused_statements(sweep: Sweep, sweep_index: int = 0) -> List[Statement]:
    """Three-address statement view of one sweep as the fused engine compiles
    it: CSE temporaries become ``scratch`` writes/reads, stores keep their
    grid access sets.  Used by the linter and by introspection; dependence
    *legality* is computed on the grid accesses, which are identical between
    this view and :func:`statements_for` (CSE neither adds nor removes grid
    accesses)."""
    from ..ir.passes import cse_sweep

    rhss = [eq.rhs for eq in sweep.eqs]
    written = frozenset(
        (eq.lhs.function.name, eq.lhs.offset_map().get("t", 0)) for eq in sweep.eqs
    )
    cse = cse_sweep(rhss, protected_keys=written)
    stmts: List[Statement] = []
    idx = 0
    for i, rhs in enumerate(cse.rhss):
        for sym, expr in cse.assignments[i]:
            reads = tuple(
                classify_indexed(ix) for ix in sorted(expr.atoms(Indexed), key=str)
            ) + tuple(
                AccessInfo(function=s.name, kind="scratch")
                for s in sorted(expr.free_symbols(), key=str)
                if s.name.startswith("cse")
            )
            stmts.append(
                Statement(
                    sweep_index,
                    idx,
                    "cse",
                    f"{sym.name} = {expr}",
                    (AccessInfo(function=sym.name, kind="scratch"),),
                    reads,
                )
            )
            idx += 1
        eq = sweep.eqs[i]
        reads = tuple(
            classify_indexed(ix) for ix in sorted(rhs.atoms(Indexed), key=str)
        ) + tuple(
            AccessInfo(function=s.name, kind="scratch")
            for s in sorted(rhs.free_symbols(), key=str)
            if s.name.startswith("cse")
        )
        stmts.append(
            Statement(
                sweep_index,
                idx,
                "stencil",
                f"{eq.lhs} = {rhs}",
                (classify_indexed(eq.lhs),),
                reads,
            )
        )
        idx += 1
    return stmts


def compute_dependences(
    stmts: Sequence[Statement],
    buffers: Dict[str, int],
) -> List[Dependence]:
    """All flow/anti/output dependences between *stmts*.

    *buffers* maps field name -> number of circular time buffers (used for
    the slot-reuse anti/output dependences).  Scratch accesses are excluded:
    scratch is private to one (t, box) instance and its hazards are the
    linter's domain, not schedule legality.
    """
    deps: List[Dependence] = []
    writes: List[Tuple[Statement, AccessInfo]] = []
    reads: List[Tuple[Statement, AccessInfo]] = []
    for st in stmts:
        for a in st.writes:
            if a.kind != "scratch":
                writes.append((st, a))
        for a in st.reads:
            if a.kind != "scratch":
                reads.append((st, a))

    def order(a: Statement, b: Statement) -> int:
        """-1: a before b in sequential same-timestep order, +1 after, 0 same."""
        if a.position < b.position:
            return -1
        if a.position > b.position:
            return 1
        return 0

    # flow: write (f, tw) -> read (f, tr); instances meet at time distance
    # k = tw - tr (the read executes k steps after the write)
    for w_st, w in writes:
        for r_st, r in reads:
            if w.function != r.function:
                continue
            k = w.time_offset - r.time_offset
            if k < 0:
                continue  # the write never precedes this read: not a flow dep
            if k == 0 and order(w_st, r_st) >= 0:
                continue  # same timestep but the read comes first (or self)
            deps.append(
                Dependence(
                    kind="flow",
                    source=w_st,
                    sink=r_st,
                    function=w.function,
                    time_distance=k,
                    distance=r.offsets,
                    affine=w.affine and r.affine,
                )
            )
    # future reads: a read of (f, tr) with tr > every write offset available
    # at its own timestep and no earlier producer — expressed as a flow dep
    # with negative time distance so the prover can reject it with an edge
    for w_st, w in writes:
        for r_st, r in reads:
            if w.function != r.function:
                continue
            k = w.time_offset - r.time_offset
            if k < 0 or (k == 0 and order(w_st, r_st) > 0):
                deps.append(
                    Dependence(
                        kind="flow",
                        source=w_st,
                        sink=r_st,
                        function=w.function,
                        time_distance=k if k < 0 else 0,
                        distance=r.offsets,
                        affine=w.affine and r.affine,
                    )
                )

    # anti: read (f, tr) -> later write (f, tw) overwriting the same slot;
    # tightest reuse is one buffer cycle: time distance k = tr - tw + b
    for r_st, r in reads:
        if not r.is_time:
            continue
        b = buffers.get(r.function, 1)
        for w_st, w in writes:
            if w.function != r.function or not w.is_time:
                continue
            k = r.time_offset - w.time_offset + b
            if k < 0 or (k == 0 and order(r_st, w_st) >= 0):
                continue
            deps.append(
                Dependence(
                    kind="anti",
                    source=r_st,
                    sink=w_st,
                    function=r.function,
                    time_distance=k,
                    distance=r.offsets,
                    affine=w.affine and r.affine,
                )
            )
    # output: two writes to the same slot.  Same (f, t_off): program order
    # decides; one buffer cycle apart: time distance b.
    for i, (a_st, a) in enumerate(writes):
        for b_st, bacc in writes[i:]:
            if a.function != bacc.function:
                continue
            if a.time_offset == bacc.time_offset:
                if a_st.position == b_st.position:
                    continue
                first, second = (
                    (a_st, b_st) if order(a_st, b_st) < 0 else (b_st, a_st)
                )
                deps.append(
                    Dependence(
                        kind="output",
                        source=first,
                        sink=second,
                        function=a.function,
                        time_distance=0,
                        distance=(),
                        affine=a.affine and bacc.affine,
                    )
                )
            elif a.is_time and bacc.is_time:
                b = buffers.get(a.function, 1)
                if abs(a.time_offset - bacc.time_offset) % b == 0:
                    deps.append(
                        Dependence(
                            kind="output",
                            source=a_st,
                            sink=b_st,
                            function=a.function,
                            time_distance=b,
                            distance=(),
                            affine=a.affine and bacc.affine,
                        )
                    )
    return deps
