"""Command-line front-end of the abstract-interpretation analyses.

Usage::

    python -m repro.verify acoustic            # one example operator
    python -m repro.verify --all               # acoustic + tti + elastic
    python -m repro.verify --all --json        # machine-readable output (CI)
    python -m repro.verify --all --json --baseline verify_baseline.json

Per example, the tool

* proves **parametric halo safety** for every schedule of the shared CLI
  sweep (naive, spatial, wavefront — the same set ``repro.profile`` times)
  plus the schedule-free "any" family, printing the
  :class:`~repro.verify.certificate.BoundsCertificate` (or the concrete
  ``(schedule, t, tile, index)`` counterexample),
* runs the kernel-IR linter (lattice-backed W201, whole-program E301/W302),
* reports the scratch-slot liveness/coloring and the pool shrink it
  licenses, and
* records the analyzer wall-time.

Exit code 1 iff any certificate is refuted or any error-severity lint
finding exists; with ``--baseline`` additionally iff a *warning*-severity
finding appears that the committed baseline does not contain (new warnings
fail CI; fixed warnings do not).

The ``--json`` output is a versioned, sorted-keys envelope, stable enough to
commit as the baseline artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

JSON_SCHEMA_VERSION = 1


def _warning_keys(payload: dict) -> set:
    """The set of warning-severity findings in a ``--json`` payload, keyed
    stably (example, code, sweep, statement) for baseline comparison."""
    keys = set()
    for example, entry in payload["results"].items():
        for d in entry["lint"]["diagnostics"]:
            if d["severity"] == "warning":
                keys.add((example, d["code"], d.get("sweep"), d.get("statement")))
    return keys


def verify_example(kind: str) -> dict:
    """Run every analysis on one example; returns the JSON entry."""
    from ..lint import SCHEDULES, build_example, make_schedule
    from .linter import lint_operator

    prop, dt = build_example(kind)
    op = prop.op
    t0 = time.perf_counter()
    report = lint_operator(op, dt=dt)
    lint_seconds = time.perf_counter() - t0

    certs = {"any": op.bounds_certificate_for(None)}
    for sched_kind in SCHEDULES:
        certs[sched_kind] = op.bounds_certificate_for(make_schedule(sched_kind))

    entry = {
        "lint": report.to_dict(),
        "bounds": {k: c.to_dict() for k, c in certs.items()},
        "analyzer_seconds": op.analyzer_seconds + lint_seconds,
        "ok": report.ok and all(c.check() for c in certs.values()),
    }
    return entry


def main(argv: Optional[List[str]] = None) -> int:
    from ..lint import EXAMPLES

    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Abstract-interpretation verification of the example operators.",
    )
    parser.add_argument(
        "example",
        nargs="?",
        choices=EXAMPLES,
        help="which example operator to verify (omit with --all)",
    )
    parser.add_argument("--all", action="store_true", help="verify every example")
    parser.add_argument("--json", action="store_true", help="JSON output (CI)")
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed baseline JSON; new warning-severity findings fail",
    )
    args = parser.parse_args(argv)
    if not args.all and args.example is None:
        parser.error("give an example name or --all")
    kinds = EXAMPLES if args.all else (args.example,)

    payload = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro.verify",
        "results": {},
    }
    failed = False
    for kind in kinds:
        entry = verify_example(kind)
        payload["results"][kind] = entry
        if not entry["ok"]:
            failed = True

    new_warnings: List[tuple] = []
    if args.baseline:
        base_path = Path(args.baseline)
        if base_path.exists():
            baseline = json.loads(base_path.read_text())
            new_warnings = sorted(
                _warning_keys(payload) - _warning_keys(baseline)
            )
            if new_warnings:
                failed = True
        else:
            print(
                f"warning: baseline {args.baseline!r} not found; "
                "skipping warning regression check",
                file=sys.stderr,
            )

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        from ..analysis.report import render_bounds_certificate
        from .certificate import BoundsCertificate

        for kind, entry in payload["results"].items():
            lint = entry["lint"]
            status = "OK" if entry["ok"] else "FAIL"
            print(
                f"{kind}: {status} ({lint['errors']} errors, "
                f"{lint['warnings']} warnings, "
                f"analyzer {entry['analyzer_seconds']*1e3:.1f}ms)"
            )
            for d in lint["diagnostics"]:
                where = f"sweep {d['sweep']}: " if d["sweep"] is not None else ""
                print(f"  {d['code']} [{d['severity']}] {where}{d['message']}")
            cert = BoundsCertificate.from_dict(entry["bounds"]["any"])
            print(render_bounds_certificate(cert, title=f"  bounds [{kind}, any]"))
            scratch = lint.get("scratch")
            if scratch is not None:
                print(
                    f"  scratch: slab-safe={scratch['safe_for_slab']}, "
                    f"{scratch['total_slots']} slots -> "
                    f"{scratch['total_colors']} slabs"
                )
            print()
    for key in new_warnings:
        print(f"new warning vs baseline: {key}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
