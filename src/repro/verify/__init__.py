"""Static verification subsystem: dependence analysis, schedule-legality
certificates, kernel-IR linting and a dynamic shadow-memory race oracle.

Layers (each usable standalone):

* :mod:`repro.verify.dependence` — per-statement read/write access sets over
  every engine IR and flow/anti/output dependences with per-dimension
  distance vectors (supersedes the radius-only summary of
  :mod:`repro.ir.dependencies`).
* :mod:`repro.verify.prover` — :func:`prove_schedule` turns the dependence
  graph plus a schedule into a machine-checkable
  :class:`~repro.verify.certificate.LegalityCertificate`, or raises
  :class:`~repro.errors.ScheduleLegalityError` carrying a concrete
  :class:`~repro.verify.certificate.Counterexample` naming two conflicting
  statement instances ``(t, tile, point)``.
* :mod:`repro.verify.linter` — static checks over compiled sweeps
  (``python -m repro.lint`` is the CLI front-end); error findings reject the
  fused bind via :class:`~repro.errors.KernelLintError`.
* :mod:`repro.verify.oracle` — shadow-memory replay of real executions on
  small grids, confirming certified schedules race-free and counterexamples
  real.
* :mod:`repro.verify.absint` — the abstract-interpretation pass framework:
  parametric bounds proofs (:func:`prove_bounds` →
  :class:`~repro.verify.certificate.BoundsCertificate`), the NEP 50 dtype
  lattice behind W201, and whole-program scratch-slot liveness/coloring
  (``python -m repro.verify`` is the CLI front-end).
"""

from .absint import (
    AffineForm,
    Interval,
    LivenessReport,
    ParamSpace,
    analyse_programs,
    prove_bounds,
    prove_growth,
)
from .certificate import (
    BoundsCertificate,
    BoundsCounterexample,
    CheckedBound,
    CheckedDependence,
    CheckedGrowth,
    Counterexample,
    GrowthCertificate,
    InstanceRef,
    LegalityCertificate,
)
from .dependence import (
    AccessInfo,
    Dependence,
    Statement,
    classify_indexed,
    compute_dependences,
    fused_statements,
    statements_for,
)
from .linter import (
    Diagnostic,
    LintReport,
    analyse_kernel_source,
    lint_bound_sweeps,
    lint_equations,
    lint_operator,
)
from .oracle import OracleReport, RaceRecord, ShadowState, run_oracle
from .prover import offgrid_counterexample, prove_schedule, resolve_sparse_mode

__all__ = [
    "AccessInfo",
    "Statement",
    "Dependence",
    "classify_indexed",
    "statements_for",
    "fused_statements",
    "compute_dependences",
    "InstanceRef",
    "Counterexample",
    "CheckedDependence",
    "LegalityCertificate",
    "CheckedBound",
    "BoundsCounterexample",
    "BoundsCertificate",
    "CheckedGrowth",
    "GrowthCertificate",
    "AffineForm",
    "Interval",
    "ParamSpace",
    "prove_bounds",
    "prove_growth",
    "LivenessReport",
    "analyse_programs",
    "prove_schedule",
    "offgrid_counterexample",
    "resolve_sparse_mode",
    "Diagnostic",
    "LintReport",
    "analyse_kernel_source",
    "lint_equations",
    "lint_bound_sweeps",
    "lint_operator",
    "OracleReport",
    "RaceRecord",
    "ShadowState",
    "run_oracle",
]
