"""Machine-checkable legality certificates and concrete counterexamples.

A :class:`LegalityCertificate` is the prover's positive verdict: for every
dependence edge of the operator it records the per-edge legality inequality —
required lag gap (from the distance vector) vs available lag gap (from the
schedule's cumulative-lag table) — together with the schedule geometry the
inequalities were evaluated under.  :meth:`LegalityCertificate.check`
re-evaluates every inequality from the recorded data alone, so a certificate
can be serialised (:meth:`to_dict` / :meth:`from_dict`), shipped, and
re-verified without the operator that produced it.

A :class:`Counterexample` is the negative verdict: two conflicting statement
instances, each named ``(t, tile, point)``, plus the dependence they violate.
The shadow-memory oracle (:mod:`repro.verify.oracle`) replays counterexamples
on small grids to confirm they manifest as real races.

A :class:`BoundsCertificate` is the parametric-bounds analysis' peer verdict
(:mod:`repro.verify.absint.bounds`): for every access of every sweep it
records the verified in-bounds inequality — symbolic in grid extent, halo,
tile extents, wavefront height and lag — together with the admissible
parameter family it quantifies over.  The negative verdict is a
:class:`BoundsCounterexample`: one concrete ``(schedule, t, tile, index)``
instance whose access escapes the padded buffer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "InstanceRef",
    "Counterexample",
    "CheckedDependence",
    "LegalityCertificate",
    "CheckedBound",
    "BoundsCounterexample",
    "BoundsCertificate",
    "CheckedGrowth",
    "GrowthCertificate",
]

Box = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class InstanceRef:
    """One statement instance: timestep, space(-time) tile, grid point."""

    t: int
    sweep: int
    tile: Box
    point: Tuple[int, ...]
    role: str = "stencil"

    def describe(self) -> str:
        tile = "x".join(f"[{lo},{hi})" for lo, hi in self.tile)
        return (
            f"{self.role} instance (t={self.t}, sweep={self.sweep}, "
            f"tile={tile}, point={self.point})"
        )

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "sweep": self.sweep,
            "tile": [list(b) for b in self.tile],
            "point": list(self.point),
            "role": self.role,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "InstanceRef":
        return cls(
            t=int(d["t"]),
            sweep=int(d["sweep"]),
            tile=tuple(tuple(b) for b in d["tile"]),
            point=tuple(d["point"]),
            role=d.get("role", "stencil"),
        )


@dataclass(frozen=True)
class Counterexample:
    """Two conflicting instances violating a dependence under a schedule.

    ``first`` executes before ``second`` under the *schedule*, but sequential
    semantics requires the opposite order (or an ordering the schedule cannot
    provide).  ``manifest`` states whether the conflict is realisable with
    the operator's actual source/tile geometry — when the prover rejects a
    schedule *class* (e.g. off-the-grid injection under wavefront blocking)
    but the concrete source placement happens to dodge every tile boundary,
    it still emits the nearest would-be conflict with ``manifest=False``.
    """

    kind: str  # dependence kind violated: "flow" | "anti" | "output"
    field: str
    first: InstanceRef
    second: InstanceRef
    reason: str
    manifest: bool = True

    def describe(self) -> str:
        return (
            f"{self.kind} violation on field {self.field!r}: "
            f"{self.first.describe()} conflicts with {self.second.describe()} "
            f"— {self.reason}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "field": self.field,
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
            "reason": self.reason,
            "manifest": self.manifest,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Counterexample":
        return cls(
            kind=d["kind"],
            field=d["field"],
            first=InstanceRef.from_dict(d["first"]),
            second=InstanceRef.from_dict(d["second"]),
            reason=d["reason"],
            manifest=bool(d.get("manifest", True)),
        )


@dataclass(frozen=True)
class CheckedDependence:
    """One dependence edge with its legality inequality evaluated.

    ``required <= available`` is the edge's legality condition; ``cross_tile``
    marks edges whose instances always fall in different time tiles (a full
    barrier separates them, so the inequality is vacuous).
    """

    kind: str
    function: str
    source: Tuple[int, int, str]  # (sweep, stmt index, role)
    sink: Tuple[int, int, str]
    time_distance: int
    distance: Tuple[Tuple[str, int], ...]
    required: int
    available: int
    cross_tile: bool = False
    affine: bool = True

    @property
    def satisfied(self) -> bool:
        if self.time_distance < 0:
            return False
        if not self.affine:
            return False
        return self.cross_tile or self.available >= self.required

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "function": self.function,
            "source": list(self.source),
            "sink": list(self.sink),
            "time_distance": self.time_distance,
            "distance": {d: s for d, s in self.distance},
            "required": self.required,
            "available": self.available,
            "cross_tile": self.cross_tile,
            "affine": self.affine,
            "satisfied": self.satisfied,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CheckedDependence":
        return cls(
            kind=d["kind"],
            function=d["function"],
            source=tuple(d["source"]),
            sink=tuple(d["sink"]),
            time_distance=int(d["time_distance"]),
            distance=tuple(sorted((k, int(v)) for k, v in d["distance"].items())),
            required=int(d["required"]),
            available=int(d["available"]),
            cross_tile=bool(d.get("cross_tile", False)),
            affine=bool(d.get("affine", True)),
        )


@dataclass
class LegalityCertificate:
    """The prover's positive verdict for (operator, schedule, sparse mode)."""

    operator: str
    schedule: Dict  # Schedule.describe()
    sparse_mode: str
    dims: Tuple[str, ...]
    skewed_dims: Tuple[str, ...]
    sweep_radii: Tuple[int, ...]
    wavefront_angle: int
    lags: Tuple[int, ...]  # per-instance cumulative lags of one time tile
    dependences: Tuple[CheckedDependence, ...] = ()

    @property
    def max_distance(self) -> Dict[str, int]:
        """Componentwise maximum absolute distance vector over all edges
        (``"t"`` plus each spatial dimension)."""
        out = {"t": 0}
        for d in self.dims:
            out[d] = 0
        for dep in self.dependences:
            out["t"] = max(out["t"], abs(dep.time_distance))
            for dim, s in dep.distance:
                out[dim] = max(out.get(dim, 0), abs(s))
        return out

    @property
    def tile_skew(self) -> int:
        """Total skew across one time tile (lag of the last instance)."""
        return self.lags[-1] if self.lags else 0

    def check(self) -> bool:
        """Re-evaluate every recorded legality inequality."""
        return all(dep.satisfied for dep in self.dependences)

    def violations(self) -> List[CheckedDependence]:
        return [dep for dep in self.dependences if not dep.satisfied]

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "schedule": dict(self.schedule),
            "sparse_mode": self.sparse_mode,
            "dims": list(self.dims),
            "skewed_dims": list(self.skewed_dims),
            "sweep_radii": list(self.sweep_radii),
            "wavefront_angle": self.wavefront_angle,
            "lags": list(self.lags),
            "max_distance": self.max_distance,
            "tile_skew": self.tile_skew,
            "dependences": [d.to_dict() for d in self.dependences],
            "legal": self.check(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LegalityCertificate":
        return cls(
            operator=d["operator"],
            schedule=dict(d["schedule"]),
            sparse_mode=d["sparse_mode"],
            dims=tuple(d["dims"]),
            skewed_dims=tuple(d["skewed_dims"]),
            sweep_radii=tuple(int(r) for r in d["sweep_radii"]),
            wavefront_angle=int(d["wavefront_angle"]),
            lags=tuple(int(x) for x in d["lags"]),
            dependences=tuple(
                CheckedDependence.from_dict(x) for x in d["dependences"]
            ),
        )

    def summary(self) -> str:
        md = self.max_distance
        dist = ", ".join(f"{k}={v}" for k, v in md.items())
        return (
            f"LegalityCertificate({self.operator}, "
            f"schedule={self.schedule.get('kind')}, sparse={self.sparse_mode}, "
            f"angle={self.wavefront_angle}, skew={self.tile_skew}, "
            f"edges={len(self.dependences)}, max_distance=({dist}), "
            f"legal={self.check()})"
        )

    def __repr__(self) -> str:
        return self.summary()


# -- parametric bounds certificates ----------------------------------------------


@dataclass(frozen=True)
class CheckedBound:
    """One access with its in-bounds verification condition evaluated.

    For a spatial access at *offset* into a field with *halo*, the executed
    window along *dim* is ``[lo, hi) ⊆ [0, N)`` (executors clip every box to
    the interior and skip empty ones), so the padded-buffer index range is
    ``[halo + lo + offset, halo + hi + offset) ⊆ [offset, N + halo + offset)
    + halo``; staying inside the padded extent ``N + 2*halo`` for **every**
    extent, tile shape, height and lag reduces to the two margins

    * ``margin_lo = halo + offset >= 0`` (lower padded edge), and
    * ``margin_hi = halo - offset >= 0`` (upper padded edge).

    ``kind="time"`` entries record circular time-buffer accesses, in-bounds
    for every timestep by the modulus (``margin``\\ s hold vacuously).
    """

    sweep: int
    statement: str
    function: str
    role: str  # "read" | "write" | "inject" | "receive"
    dim: str
    offset: int
    halo: int
    margin_lo: int
    margin_hi: int
    vc: str  # the symbolic condition, rendered over the parameter family
    kind: str = "space"

    @property
    def satisfied(self) -> bool:
        return self.margin_lo >= 0 and self.margin_hi >= 0

    def to_dict(self) -> dict:
        return {
            "sweep": self.sweep,
            "statement": self.statement,
            "function": self.function,
            "role": self.role,
            "dim": self.dim,
            "offset": self.offset,
            "halo": self.halo,
            "margin_lo": self.margin_lo,
            "margin_hi": self.margin_hi,
            "vc": self.vc,
            "kind": self.kind,
            "satisfied": self.satisfied,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CheckedBound":
        return cls(
            sweep=int(d["sweep"]),
            statement=d["statement"],
            function=d["function"],
            role=d["role"],
            dim=d["dim"],
            offset=int(d["offset"]),
            halo=int(d["halo"]),
            margin_lo=int(d["margin_lo"]),
            margin_hi=int(d["margin_hi"]),
            vc=d["vc"],
            kind=d.get("kind", "space"),
        )


@dataclass(frozen=True)
class BoundsCounterexample:
    """A concrete out-of-bounds instance: (schedule, t, tile, index).

    ``index`` is the padded-buffer index the access resolves to at
    ``instance.point`` — provably outside ``[0, extent)`` along ``dim``.
    NumPy note: a negative index *wraps silently* (reading the wrong end of
    the buffer, no exception), an index past the end clips the view and
    surfaces as a shape-mismatch error — and the upcoming native backend
    would segfault; either way execution is wrong, which is why the gate
    rejects the bind before any timestep runs.
    """

    schedule: Dict
    instance: InstanceRef
    function: str
    dim: str
    offset: int
    halo: int
    index: Tuple[int, ...]
    extent: Tuple[int, ...]
    reason: str

    def describe(self) -> str:
        return (
            f"out-of-bounds access on field {self.function!r}: "
            f"{self.instance.describe()} reads offset {self.offset:+d} along "
            f"{self.dim} (halo {self.halo}) at padded-buffer index "
            f"{list(self.index)} outside extent {list(self.extent)} — "
            f"{self.reason}"
        )

    def to_dict(self) -> dict:
        return {
            "schedule": dict(self.schedule),
            "instance": self.instance.to_dict(),
            "function": self.function,
            "dim": self.dim,
            "offset": self.offset,
            "halo": self.halo,
            "index": list(self.index),
            "extent": list(self.extent),
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BoundsCounterexample":
        return cls(
            schedule=dict(d["schedule"]),
            instance=InstanceRef.from_dict(d["instance"]),
            function=d["function"],
            dim=d["dim"],
            offset=int(d["offset"]),
            halo=int(d["halo"]),
            index=tuple(d["index"]),
            extent=tuple(d["extent"]),
            reason=d["reason"],
        )


@dataclass(frozen=True)
class CheckedGrowth:
    """One written field's per-step amplitude amplification bound.

    The interval ``[lo, hi]`` is the image of the field's update expression
    under interval abstract interpretation with every wavefield read set to
    the unit interval ``[-1, 1]`` and every model read set to its actual
    data range (see :mod:`repro.verify.absint.growth`).  By linearity of the
    update in the wavefields, ``gain = max(|lo|, |hi|)`` bounds the factor
    by which one timestep can amplify the state's max-norm.  An infinite
    gain (e.g. a division whose abstract denominator straddles zero) marks
    the check unsatisfied — the certificate then cannot support a runtime
    amplitude invariant and the ABFT guard degrades to checksum-only mode.
    """

    sweep: int
    field: str
    lo: float
    hi: float
    engine: str  # "absint" (fused TAProgram pass) | "interval" (expr tree)

    @property
    def gain(self) -> float:
        return max(abs(self.lo), abs(self.hi))

    @property
    def satisfied(self) -> bool:
        return math.isfinite(self.gain)

    def to_dict(self) -> dict:
        return {
            "sweep": self.sweep,
            "field": self.field,
            "lo": self.lo,
            "hi": self.hi,
            "engine": self.engine,
            "gain": self.gain,
            "satisfied": self.satisfied,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CheckedGrowth":
        return cls(
            sweep=int(d["sweep"]),
            field=d["field"],
            lo=float(d["lo"]),
            hi=float(d["hi"]),
            engine=d["engine"],
        )


@dataclass
class GrowthCertificate:
    """The growth analysis' verdict: per-step amplitude amplification bounds.

    The peer of :class:`BoundsCertificate` for the ABFT amplitude invariant
    (:mod:`repro.runtime.abft`): ``checks`` holds one :class:`CheckedGrowth`
    per written field of every sweep, and :attr:`step_gain` — the product of
    the per-sweep worst-case gains, clamped at 1 — bounds how much one full
    timestep can amplify the state's max-norm.  The runtime invariant
    ``|u|_exit <= slack * (G**h * |u|_entry + source energy)`` over a time
    tile of height *h* follows by induction; a finite-valued bit flip that
    rewrites an exponent field violates it by many orders of magnitude.
    Like its peers, the certificate re-verifies from its own recorded data
    after a serialisation round-trip.
    """

    operator: str
    dt: float
    checks: Tuple[CheckedGrowth, ...] = ()

    @property
    def sweep_gains(self) -> Dict[int, float]:
        """Worst-case gain per sweep, clamped at 1 (a sweep that leaves a
        field untouched is the identity on it)."""
        gains: Dict[int, float] = {}
        for c in self.checks:
            gains[c.sweep] = max(gains.get(c.sweep, 1.0), c.gain)
        return gains

    @property
    def step_gain(self) -> float:
        """Amplification bound of one full timestep (all sweeps in order)."""
        g = 1.0
        for gain in self.sweep_gains.values():
            g *= gain
        return max(g, 1.0)

    def gain(self, height: int) -> float:
        """Amplification bound across a time tile of *height* steps."""
        return self.step_gain ** max(int(height), 1)

    def check(self) -> bool:
        return all(c.satisfied for c in self.checks) and math.isfinite(self.step_gain)

    def violations(self) -> List[CheckedGrowth]:
        return [c for c in self.checks if not c.satisfied]

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "dt": self.dt,
            "checks": [c.to_dict() for c in self.checks],
            "step_gain": self.step_gain,
            "bounded": self.check(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "GrowthCertificate":
        return cls(
            operator=d["operator"],
            dt=float(d["dt"]),
            checks=tuple(CheckedGrowth.from_dict(x) for x in d["checks"]),
        )

    def summary(self) -> str:
        return (
            f"GrowthCertificate({self.operator}, dt={self.dt:g}, "
            f"checks={len(self.checks)}, step_gain={self.step_gain:.4g}, "
            f"bounded={self.check()})"
        )

    def __repr__(self) -> str:
        return self.summary()


@dataclass
class BoundsCertificate:
    """The parametric bounds analysis' verdict for (operator, schedule family).

    ``params`` records the admissible family quantified over (each parameter
    with its interval and meaning — see
    :class:`repro.verify.absint.domain.ParamSpace`); ``checks`` holds one
    :class:`CheckedBound` per (access, dimension).  Like
    :class:`LegalityCertificate`, the certificate re-verifies from its own
    recorded data (:meth:`check`) after a serialisation round-trip.
    """

    operator: str
    schedule: Dict
    sparse_mode: str
    dims: Tuple[str, ...]
    halos: Dict[str, int]
    params: Dict
    checks: Tuple[CheckedBound, ...] = ()
    counterexample: Optional[BoundsCounterexample] = None

    def check(self) -> bool:
        return self.counterexample is None and all(c.satisfied for c in self.checks)

    def violations(self) -> List[CheckedBound]:
        return [c for c in self.checks if not c.satisfied]

    @property
    def min_margin(self) -> Optional[int]:
        """The tightest halo margin over all spatial checks (0 means some
        access touches the outermost halo layer — still safe, no slack)."""
        margins = [
            min(c.margin_lo, c.margin_hi) for c in self.checks if c.kind == "space"
        ]
        return min(margins) if margins else None

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "schedule": dict(self.schedule),
            "sparse_mode": self.sparse_mode,
            "dims": list(self.dims),
            "halos": dict(sorted(self.halos.items())),
            "params": dict(self.params),
            "checks": [c.to_dict() for c in self.checks],
            "counterexample": (
                self.counterexample.to_dict() if self.counterexample else None
            ),
            "min_margin": self.min_margin,
            "safe": self.check(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BoundsCertificate":
        ce = d.get("counterexample")
        return cls(
            operator=d["operator"],
            schedule=dict(d["schedule"]),
            sparse_mode=d["sparse_mode"],
            dims=tuple(d["dims"]),
            halos={k: int(v) for k, v in d["halos"].items()},
            params=dict(d["params"]),
            checks=tuple(CheckedBound.from_dict(x) for x in d["checks"]),
            counterexample=BoundsCounterexample.from_dict(ce) if ce else None,
        )

    def summary(self) -> str:
        return (
            f"BoundsCertificate({self.operator}, "
            f"schedule={self.schedule.get('kind')}, sparse={self.sparse_mode}, "
            f"checks={len(self.checks)}, min_margin={self.min_margin}, "
            f"safe={self.check()})"
        )

    def __repr__(self) -> str:
        return self.summary()
