"""Machine-checkable legality certificates and concrete counterexamples.

A :class:`LegalityCertificate` is the prover's positive verdict: for every
dependence edge of the operator it records the per-edge legality inequality —
required lag gap (from the distance vector) vs available lag gap (from the
schedule's cumulative-lag table) — together with the schedule geometry the
inequalities were evaluated under.  :meth:`LegalityCertificate.check`
re-evaluates every inequality from the recorded data alone, so a certificate
can be serialised (:meth:`to_dict` / :meth:`from_dict`), shipped, and
re-verified without the operator that produced it.

A :class:`Counterexample` is the negative verdict: two conflicting statement
instances, each named ``(t, tile, point)``, plus the dependence they violate.
The shadow-memory oracle (:mod:`repro.verify.oracle`) replays counterexamples
on small grids to confirm they manifest as real races.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "InstanceRef",
    "Counterexample",
    "CheckedDependence",
    "LegalityCertificate",
]

Box = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class InstanceRef:
    """One statement instance: timestep, space(-time) tile, grid point."""

    t: int
    sweep: int
    tile: Box
    point: Tuple[int, ...]
    role: str = "stencil"

    def describe(self) -> str:
        tile = "x".join(f"[{lo},{hi})" for lo, hi in self.tile)
        return (
            f"{self.role} instance (t={self.t}, sweep={self.sweep}, "
            f"tile={tile}, point={self.point})"
        )

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "sweep": self.sweep,
            "tile": [list(b) for b in self.tile],
            "point": list(self.point),
            "role": self.role,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "InstanceRef":
        return cls(
            t=int(d["t"]),
            sweep=int(d["sweep"]),
            tile=tuple(tuple(b) for b in d["tile"]),
            point=tuple(d["point"]),
            role=d.get("role", "stencil"),
        )


@dataclass(frozen=True)
class Counterexample:
    """Two conflicting instances violating a dependence under a schedule.

    ``first`` executes before ``second`` under the *schedule*, but sequential
    semantics requires the opposite order (or an ordering the schedule cannot
    provide).  ``manifest`` states whether the conflict is realisable with
    the operator's actual source/tile geometry — when the prover rejects a
    schedule *class* (e.g. off-the-grid injection under wavefront blocking)
    but the concrete source placement happens to dodge every tile boundary,
    it still emits the nearest would-be conflict with ``manifest=False``.
    """

    kind: str  # dependence kind violated: "flow" | "anti" | "output"
    field: str
    first: InstanceRef
    second: InstanceRef
    reason: str
    manifest: bool = True

    def describe(self) -> str:
        return (
            f"{self.kind} violation on field {self.field!r}: "
            f"{self.first.describe()} conflicts with {self.second.describe()} "
            f"— {self.reason}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "field": self.field,
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
            "reason": self.reason,
            "manifest": self.manifest,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Counterexample":
        return cls(
            kind=d["kind"],
            field=d["field"],
            first=InstanceRef.from_dict(d["first"]),
            second=InstanceRef.from_dict(d["second"]),
            reason=d["reason"],
            manifest=bool(d.get("manifest", True)),
        )


@dataclass(frozen=True)
class CheckedDependence:
    """One dependence edge with its legality inequality evaluated.

    ``required <= available`` is the edge's legality condition; ``cross_tile``
    marks edges whose instances always fall in different time tiles (a full
    barrier separates them, so the inequality is vacuous).
    """

    kind: str
    function: str
    source: Tuple[int, int, str]  # (sweep, stmt index, role)
    sink: Tuple[int, int, str]
    time_distance: int
    distance: Tuple[Tuple[str, int], ...]
    required: int
    available: int
    cross_tile: bool = False
    affine: bool = True

    @property
    def satisfied(self) -> bool:
        if self.time_distance < 0:
            return False
        if not self.affine:
            return False
        return self.cross_tile or self.available >= self.required

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "function": self.function,
            "source": list(self.source),
            "sink": list(self.sink),
            "time_distance": self.time_distance,
            "distance": {d: s for d, s in self.distance},
            "required": self.required,
            "available": self.available,
            "cross_tile": self.cross_tile,
            "affine": self.affine,
            "satisfied": self.satisfied,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CheckedDependence":
        return cls(
            kind=d["kind"],
            function=d["function"],
            source=tuple(d["source"]),
            sink=tuple(d["sink"]),
            time_distance=int(d["time_distance"]),
            distance=tuple(sorted((k, int(v)) for k, v in d["distance"].items())),
            required=int(d["required"]),
            available=int(d["available"]),
            cross_tile=bool(d.get("cross_tile", False)),
            affine=bool(d.get("affine", True)),
        )


@dataclass
class LegalityCertificate:
    """The prover's positive verdict for (operator, schedule, sparse mode)."""

    operator: str
    schedule: Dict  # Schedule.describe()
    sparse_mode: str
    dims: Tuple[str, ...]
    skewed_dims: Tuple[str, ...]
    sweep_radii: Tuple[int, ...]
    wavefront_angle: int
    lags: Tuple[int, ...]  # per-instance cumulative lags of one time tile
    dependences: Tuple[CheckedDependence, ...] = ()

    @property
    def max_distance(self) -> Dict[str, int]:
        """Componentwise maximum absolute distance vector over all edges
        (``"t"`` plus each spatial dimension)."""
        out = {"t": 0}
        for d in self.dims:
            out[d] = 0
        for dep in self.dependences:
            out["t"] = max(out["t"], abs(dep.time_distance))
            for dim, s in dep.distance:
                out[dim] = max(out.get(dim, 0), abs(s))
        return out

    @property
    def tile_skew(self) -> int:
        """Total skew across one time tile (lag of the last instance)."""
        return self.lags[-1] if self.lags else 0

    def check(self) -> bool:
        """Re-evaluate every recorded legality inequality."""
        return all(dep.satisfied for dep in self.dependences)

    def violations(self) -> List[CheckedDependence]:
        return [dep for dep in self.dependences if not dep.satisfied]

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "schedule": dict(self.schedule),
            "sparse_mode": self.sparse_mode,
            "dims": list(self.dims),
            "skewed_dims": list(self.skewed_dims),
            "sweep_radii": list(self.sweep_radii),
            "wavefront_angle": self.wavefront_angle,
            "lags": list(self.lags),
            "max_distance": self.max_distance,
            "tile_skew": self.tile_skew,
            "dependences": [d.to_dict() for d in self.dependences],
            "legal": self.check(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LegalityCertificate":
        return cls(
            operator=d["operator"],
            schedule=dict(d["schedule"]),
            sparse_mode=d["sparse_mode"],
            dims=tuple(d["dims"]),
            skewed_dims=tuple(d["skewed_dims"]),
            sweep_radii=tuple(int(r) for r in d["sweep_radii"]),
            wavefront_angle=int(d["wavefront_angle"]),
            lags=tuple(int(x) for x in d["lags"]),
            dependences=tuple(
                CheckedDependence.from_dict(x) for x in d["dependences"]
            ),
        )

    def summary(self) -> str:
        md = self.max_distance
        dist = ", ".join(f"{k}={v}" for k, v in md.items())
        return (
            f"LegalityCertificate({self.operator}, "
            f"schedule={self.schedule.get('kind')}, sparse={self.sparse_mode}, "
            f"angle={self.wavefront_angle}, skew={self.tile_skew}, "
            f"edges={len(self.dependences)}, max_distance=({dist}), "
            f"legal={self.check()})"
        )

    def __repr__(self) -> str:
        return self.summary()
