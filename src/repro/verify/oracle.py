"""Dynamic shadow-memory race oracle.

The static prover (:mod:`repro.verify.prover`) argues about dependence
*classes*; this module checks *executions*.  It replays an operator's exact
traversal — the real :class:`~repro.execution.executors.ExecutionPlan` loop
structure under the real schedule — with the numeric kernels replaced by
shadow instrumentation that records, per ``(field, buffer slot, grid point)``,
which timestep's value is currently resident:

* a **stencil assign** of ``u[t+k]`` on a box sets ``resident = t+k`` over the
  box (and flags a *lost update* if an injection had already added into that
  ``(point, t+k)`` — the add is obliterated, Fig. 4b's race);
* an **injection add** requires ``resident == t+k`` at every target point
  (the producing stencil instance must already have run there) — a premature
  add lands in a buffer another timestep still owns;
* every **read** — stencil neighbourhood, receiver gather, off-grid
  interpolation — requires ``resident`` to equal the timestep the access
  names; anything else is a stale value from a violated flow or anti
  dependence.

Because the shadow sweeps duck-type :class:`~repro.execution.evalbox.BoundSweep`
inside a genuine ``ExecutionPlan``, the oracle exercises the very executors
(:func:`~repro.execution.executors.run_schedule`) that production runs use —
the property tests confirm every statically certified schedule is race-free
and every prover counterexample manifests here (``unsafe_offgrid=True``
re-enables the deliberately wrong off-grid-injection-in-tiles path for the
negative test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.scheduler import NaiveSchedule, Schedule, WavefrontSchedule
from ..dsl.functions import TimeFunction
from ..dsl.interpolation import support_points
from ..execution.executors import ExecutionPlan, run_schedule
from ..ir.dependencies import read_accesses, written_access

__all__ = [
    "RaceRecord",
    "OracleReport",
    "ShadowState",
    "run_oracle",
]

Box = Tuple[Tuple[int, int], ...]

_NO_ADD = np.iinfo(np.int64).min


@dataclass(frozen=True)
class RaceRecord:
    """One detected race: an access observing (or destroying) the wrong value."""

    kind: str  # "stale-read" | "lost-update" | "duplicate-write"
    field: str
    t: int  # the timestep the access names
    found: int  # the timestep actually resident (reads) / involved (writes)
    point: Tuple[int, ...]
    actor: str  # who performed the offending access
    box: Optional[Box] = None

    def describe(self) -> str:
        return (
            f"{self.kind} on {self.field!r} at point {self.point}: {self.actor} "
            f"named timestep {self.t} but found timestep {self.found}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "field": self.field,
            "t": self.t,
            "found": self.found,
            "point": list(self.point),
            "actor": self.actor,
            "box": [list(b) for b in self.box] if self.box else None,
        }


@dataclass
class OracleReport:
    """Outcome of one shadow replay."""

    operator: str
    schedule: Dict
    sparse_mode: str
    races: List[RaceRecord] = field(default_factory=list)
    nraces: int = 0  # total, even past the recording cap
    reads_checked: int = 0
    writes_checked: int = 0

    @property
    def ok(self) -> bool:
        return self.nraces == 0

    def races_on(self, field_name: str) -> List[RaceRecord]:
        return [r for r in self.races if r.field == field_name]

    def describe(self) -> str:
        head = (
            f"oracle[{self.operator} / {self.schedule.get('kind')} / "
            f"{self.sparse_mode}]: {self.reads_checked} reads, "
            f"{self.writes_checked} writes checked, {self.nraces} races"
        )
        return "\n".join([head] + ["  " + r.describe() for r in self.races])

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "schedule": dict(self.schedule),
            "sparse_mode": self.sparse_mode,
            "ok": self.ok,
            "races": self.nraces,
            "reads_checked": self.reads_checked,
            "writes_checked": self.writes_checked,
            "examples": [r.to_dict() for r in self.races],
        }


class _ShadowField:
    """Resident-timestep and pending-add shadow arrays for one TimeFunction."""

    def __init__(self, func: TimeFunction, first_write: int):
        self.name = func.name
        self.first_write = first_write
        self.buffers = int(func.buffers)
        shape = tuple(func.grid.shape)
        base = first_write - self.buffers
        # slot s initially holds the newest pre-existing timestep congruent to
        # s modulo the buffer count (the initial condition occupies the
        # buffers the first writes have not yet claimed)
        self.resident = np.empty((self.buffers,) + shape, dtype=np.int64)
        for s in range(self.buffers):
            self.resident[s] = base + ((s - base) % self.buffers)
        self.added = np.full((self.buffers,) + shape, _NO_ADD, dtype=np.int64)

    def slot(self, t: int) -> int:
        return t % self.buffers


class ShadowState:
    """All shadow fields plus the race log; the instrumentation target."""

    def __init__(self, grid, max_records: int = 64):
        self.grid = grid
        self.dim_names = [d.name for d in grid.dimensions]
        self.fields: Dict[str, _ShadowField] = {}
        self.races: List[RaceRecord] = []
        self.nraces = 0
        self.reads_checked = 0
        self.writes_checked = 0
        self.max_records = max_records

    def add_field(self, func: TimeFunction, first_write: int) -> None:
        if func.name not in self.fields:
            self.fields[func.name] = _ShadowField(func, first_write)

    def _record(self, race: RaceRecord) -> None:
        self.nraces += 1
        if len(self.races) < self.max_records:
            self.races.append(race)

    # -- region (box) accesses ---------------------------------------------------
    def _clip(self, box: Box, shifts: Dict[str, int]) -> Optional[Box]:
        region = []
        for (lo, hi), extent, name in zip(box, self.grid.shape, self.dim_names):
            s = shifts.get(name, 0)
            lo2, hi2 = max(lo + s, 0), min(hi + s, extent)
            if lo2 >= hi2:
                return None
            region.append((lo2, hi2))
        return tuple(region)

    def check_region_read(
        self, fname: str, t: int, box: Box, shifts: Dict[str, int], actor: str
    ) -> None:
        sf = self.fields.get(fname)
        if sf is None:
            return
        region = self._clip(box, shifts)
        if region is None:
            return
        self.reads_checked += 1
        sl = tuple(slice(lo, hi) for lo, hi in region)
        res = sf.resident[sf.slot(t)][sl]
        bad = res != t
        if bad.any():
            rel = np.argwhere(bad)[0]
            point = tuple(int(lo + r) for (lo, _), r in zip(region, rel))
            self._record(
                RaceRecord(
                    "stale-read", fname, t, int(res[tuple(rel)]), point, actor, box
                )
            )

    def region_assign(self, fname: str, t: int, box: Box, actor: str) -> None:
        sf = self.fields.get(fname)
        if sf is None:
            return
        self.writes_checked += 1
        s = sf.slot(t)
        sl = tuple(slice(lo, hi) for lo, hi in box)
        over = sf.added[s][sl] == t
        if over.any():
            rel = np.argwhere(over)[0]
            point = tuple(int(lo + r) for (lo, _), r in zip(box, rel))
            self._record(RaceRecord("lost-update", fname, t, t, point, actor, box))
        dup = sf.resident[s][sl] == t
        if dup.any():
            rel = np.argwhere(dup)[0]
            point = tuple(int(lo + r) for (lo, _), r in zip(box, rel))
            self._record(RaceRecord("duplicate-write", fname, t, t, point, actor, box))
        sf.resident[s][sl] = t
        sf.added[s][sl] = _NO_ADD

    # -- sparse (point set) accesses ----------------------------------------------
    def check_point_read(
        self, fname: str, t: int, points: np.ndarray, actor: str, box: Optional[Box]
    ) -> None:
        sf = self.fields.get(fname)
        if sf is None or points.size == 0:
            return
        self.reads_checked += 1
        idx = tuple(points[:, d] for d in range(points.shape[1]))
        res = sf.resident[sf.slot(t)][idx]
        bad = res != t
        if bad.any():
            i = int(np.argmax(bad))
            self._record(
                RaceRecord(
                    "stale-read", fname, t, int(res[i]),
                    tuple(int(c) for c in points[i]), actor, box,
                )
            )

    def point_add(
        self, fname: str, t: int, points: np.ndarray, actor: str, box: Optional[Box]
    ) -> None:
        sf = self.fields.get(fname)
        if sf is None or points.size == 0:
            return
        self.writes_checked += 1
        s = sf.slot(t)
        idx = tuple(points[:, d] for d in range(points.shape[1]))
        res = sf.resident[s][idx]
        bad = res != t
        if bad.any():
            i = int(np.argmax(bad))
            self._record(
                RaceRecord(
                    "lost-update", fname, t, int(res[i]),
                    tuple(int(c) for c in points[i]), actor, box,
                )
            )
        sf.added[s][idx] = t


class _ShadowSweep:
    """Duck-types :class:`BoundSweep` — ``evaluate(t, box)`` updates shadows."""

    def __init__(self, state: ShadowState, sweep, index: int):
        self.state = state
        self.index = index
        self.steps = []
        for eq in sweep.eqs:
            w = written_access(eq)
            reads = [
                a for a in read_accesses(eq) if isinstance(a.function, TimeFunction)
            ]
            self.steps.append((reads, w))

    def evaluate(self, t: int, box: Box) -> None:
        state = self.state
        for reads, w in self.steps:
            for a in reads:
                state.check_region_read(
                    a.function.name,
                    t + a.time_offset,
                    box,
                    dict(a.space_offsets),
                    f"sweep {self.index} stencil read (t={t})",
                )
            state.region_assign(
                w.function.name,
                t + w.time_offset,
                box,
                f"sweep {self.index} stencil write (t={t})",
            )

    def invalidate_invariants(self) -> None:  # BoundSweep interface parity
        pass


class _ShadowAlignedInjection:
    def __init__(self, state: ShadowState, aligned):
        self.state = state
        self.field_name = aligned.field.name
        self.time_offset = aligned.time_offset
        self.nt = aligned.nt
        self.masks = aligned.masks

    def apply(self, t: int, box: Optional[Box] = None) -> None:
        if not 0 <= t < self.nt or self.masks.npts == 0:
            return
        pts = self.masks.points
        if box is not None:
            ids = self.masks.points_in_box(box)
            if ids.size == 0:
                return
            pts = pts[ids]
        self.state.point_add(
            self.field_name, t + self.time_offset, pts,
            f"aligned injection (t={t})", box,
        )


class _ShadowAlignedReceiver:
    def __init__(self, state: ShadowState, aligned):
        self.state = state
        self.field_name = aligned.field.name
        self.time_offset = aligned.time_offset
        self.nt = aligned.output.shape[0]
        self.masks = aligned.masks

    def gather(self, t: int, box: Optional[Box] = None) -> None:
        if self.masks.npts == 0 or not 0 <= t + self.time_offset < self.nt:
            return
        pts = self.masks.points
        if box is not None:
            ids = self.masks.points_in_box(box)
            if ids.size == 0:
                return
            pts = pts[ids]
        self.state.check_point_read(
            self.field_name, t + self.time_offset, pts,
            f"aligned receiver gather (t={t})", box,
        )

    def finalize(self, t: int) -> None:
        pass


class _ShadowRawInjection:
    """Off-the-grid injection shadow: whole-grid only, like the real one."""

    def __init__(self, state: ShadowState, injection):
        self.state = state
        self.field_name = injection.field.name
        self.time_offset = injection.time_offset
        self.indices, _ = support_points(
            injection.sparse.coordinates, injection.sparse.grid
        )
        self.nt = injection.sparse.data.shape[0]

    def _corners(self) -> np.ndarray:
        return self.indices.reshape(-1, self.indices.shape[-1])

    def apply(self, t: int, box: Optional[Box] = None) -> None:
        if box is not None:
            raise ValueError(
                "off-the-grid injection cannot run inside a space-time tile; "
                "precompute it with repro.core (decompose_source) first"
            )
        if not 0 <= t < self.nt:
            return
        self.state.point_add(
            self.field_name, t + self.time_offset, self._corners(),
            f"off-grid injection (t={t})", None,
        )


class _ShadowUnsafeOffGridInjection(_ShadowRawInjection):
    """Shadow of :class:`~repro.execution.sparse.UnsafeOffGridInjection`: the
    deliberately wrong tiled off-grid scatter (negative-test vehicle)."""

    def apply(self, t: int, box: Optional[Box] = None) -> None:
        if box is None:
            return super().apply(t)
        if not 0 <= t < self.nt:
            return
        base = self.indices[:, 0, :]
        sel = np.ones(base.shape[0], dtype=bool)
        for d, (lo, hi) in enumerate(box):
            sel &= (base[:, d] >= lo) & (base[:, d] < hi)
        if not sel.any():
            return
        corners = self.indices[sel].reshape(-1, self.indices.shape[-1])
        self.state.point_add(
            self.field_name, t + self.time_offset, corners,
            f"unsafe off-grid injection (t={t})", box,
        )


class _ShadowRawInterpolation:
    def __init__(self, state: ShadowState, interpolation):
        self.state = state
        self.field_name = interpolation.field.name
        self.time_offset = interpolation.time_offset
        self.indices, _ = support_points(
            interpolation.sparse.coordinates, interpolation.sparse.grid
        )
        self.nt = interpolation.sparse.data.shape[0]

    def gather(self, t: int, box: Optional[Box] = None) -> None:
        if box is not None:
            raise ValueError(
                "off-the-grid interpolation cannot run inside a space-time "
                "tile; precompute it with repro.core (decompose_receiver) first"
            )

    def finalize(self, t: int) -> None:
        row = t + self.time_offset
        if not 0 <= row < self.nt:
            return
        corners = self.indices.reshape(-1, self.indices.shape[-1])
        self.state.check_point_read(
            self.field_name, row, corners, f"off-grid interpolation (t={t})", None
        )


def run_oracle(
    op,
    schedule: Optional[Schedule] = None,
    time_M: int = 8,
    time_m: int = 0,
    dt: float = 1.0,
    sparse_mode: str = "auto",
    unsafe_offgrid: bool = False,
    max_records: int = 64,
) -> OracleReport:
    """Shadow-replay *op* under *schedule* and report every race.

    The replay drives a genuine :class:`ExecutionPlan` through
    :func:`run_schedule` — identical traversal, instrumented kernels.
    ``unsafe_offgrid=True`` swaps raw injections for the deliberately wrong
    tiled variant so the prover's off-grid counterexamples can be confirmed
    dynamically (the paper's Fig. 4b violation).  Keep grids small (<= 64^3):
    shadow arrays hold one int64 per (buffer, point).
    """
    from .prover import resolve_sparse_mode

    schedule = schedule or NaiveSchedule()
    if unsafe_offgrid:
        mode = "offgrid"
    else:
        mode = resolve_sparse_mode(sparse_mode, schedule)
        if mode == "offgrid" and isinstance(schedule, WavefrontSchedule):
            mode = "precomputed"

    state = ShadowState(op.grid, max_records=max_records)
    for sweep in op.sweeps:
        for eq in sweep.eqs:
            w = written_access(eq)
            if not isinstance(w.function, TimeFunction):
                continue
            first = time_m + w.time_offset
            existing = state.fields.get(w.function.name)
            # multiple write offsets to one field: shadow from the earliest
            if existing is None or first < existing.first_write:
                state.fields.pop(w.function.name, None)
                state.add_field(w.function, first)

    plan = ExecutionPlan(
        grid=op.grid,
        sweeps=[_ShadowSweep(state, s, j) for j, s in enumerate(op.sweeps)],
        radii=list(op.sweep_radii),
    )
    for inj in op.injections():
        j = op._sweep_index_for(inj.field.name, inj.time_offset)
        if mode == "precomputed":
            shadow = _ShadowAlignedInjection(state, op._aligned_injection(inj, dt))
        elif unsafe_offgrid:
            shadow = _ShadowUnsafeOffGridInjection(state, inj)
        else:
            shadow = _ShadowRawInjection(state, inj)
        plan.injections.setdefault(j, []).append(shadow)
    tiled = isinstance(schedule, WavefrontSchedule)
    for itp in op.interpolations():
        j = op._sweep_index_for(itp.field.name, itp.time_offset)
        if mode == "precomputed" or (unsafe_offgrid and tiled):
            # the unsafe negative test corrupts only the injection side;
            # receivers ride the (legal) aligned path so the run completes
            shadow = _ShadowAlignedReceiver(state, op._aligned_receiver(itp))
        else:
            shadow = _ShadowRawInterpolation(state, itp)
        plan.receivers.setdefault(j, []).append(shadow)

    run_schedule(plan, time_m, time_M, schedule, step_cache={})
    return OracleReport(
        operator=op.name,
        schedule=schedule.describe(),
        sparse_mode="offgrid" if unsafe_offgrid else mode,
        races=state.races,
        nraces=state.nraces,
        reads_checked=state.reads_checked,
        writes_checked=state.writes_checked,
    )
