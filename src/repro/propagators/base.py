"""Common propagator machinery: operator caching and forward modelling."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.scheduler import NaiveSchedule, Schedule
from ..dsl.functions import SparseTimeFunction, TimeFunction
from ..ir.operator import Operator
from .model import SeismicModel

__all__ = ["Propagator"]


class Propagator:
    """Base class of the three wave propagators of §III.

    Subclasses build the symbolic equations and sparse operators in
    ``_build()`` and list their time-stepped fields in ``self.fields``.
    """

    kind = "abstract"

    def __init__(
        self,
        model: SeismicModel,
        space_order: int = 8,
        source: Optional[SparseTimeFunction] = None,
        receivers: Optional[SparseTimeFunction] = None,
    ):
        self.model = model
        self.grid = model.grid
        self.space_order = int(space_order)
        self.source = source
        self.receivers = receivers
        self.fields: List[TimeFunction] = []
        self._op: Optional[Operator] = None

    # -- to be provided by subclasses ------------------------------------------------
    def _build(self) -> Operator:
        raise NotImplementedError

    # -- public API ------------------------------------------------------------------
    @property
    def op(self) -> Operator:
        if self._op is None:
            self._op = self._build()
        return self._op

    def zero_fields(self) -> None:
        """Reset all wavefields (zero initial conditions, as the paper)."""
        for f in self.fields:
            f.data_with_halo[...] = 0.0

    def critical_dt(self, cfl: Optional[float] = None) -> float:
        return self.model.critical_dt(self.kind, cfl=cfl)

    def forward(
        self,
        nt: Optional[int] = None,
        tn: Optional[float] = None,
        dt: Optional[float] = None,
        schedule: Optional[Schedule] = None,
        sparse_mode: str = "auto",
        reset: bool = True,
        engine: Optional[str] = None,
        health=None,
        checkpoint=None,
        faults=None,
        abft=None,
        cfl: str = "warn",
        strict_engine: bool = False,
        telemetry=None,
        breaker=None,
        step_cache=None,
    ):
        """Run the forward model for *nt* steps (or *tn* ms) under *schedule*.

        ``engine`` selects the sweep execution engine ("fused"/"kernel"/
        "interp", see :meth:`repro.ir.operator.Operator.apply`).
        Returns ``(receiver_data, plan)``; wavefields stay on the propagator's
        :class:`TimeFunction` objects for inspection.

        ``cfl`` sets the pre-flight stability policy for an explicit *dt*:
        ``"warn"`` (default) emits a :class:`~repro.errors.StabilityWarning`
        when *dt* exceeds the critical timestep — unstable runs remain legal,
        the blow-up demonstration depends on them — ``"raise"`` turns it into
        a :class:`~repro.errors.StabilityViolation`, ``"ignore"`` skips the
        check.  ``health``/``checkpoint``/``faults``/``abft`` attach the
        runtime resilience layer (see :mod:`repro.runtime`; ``abft`` is the
        silent-corruption guard with tile-granular micro-snapshot recovery)
        and ``breaker`` hooks a
        :class:`~repro.jobs.CircuitBreaker` onto the engine ladder; with
        ``checkpoint.resume`` set and a snapshot available the wavefields are
        *not* reset — the run continues from the restored state.
        ``telemetry`` attaches a :class:`~repro.telemetry.Telemetry` buffer
        (phase-level timing, counters, optional per-instance trace spans).
        ``step_cache`` overrides the operator's private step-plan cache with
        a caller-owned dict — how warm workers persist wavefront tile
        geometry across jobs whose operators are rebuilt per shot.
        """
        if dt is None:
            dt = self.critical_dt()
        elif cfl != "ignore":
            from ..runtime.preflight import check_cfl

            check_cfl(dt, self.model, kind=self.kind, policy=cfl)
        if nt is None:
            if tn is None:
                raise ValueError("give either nt or tn")
            nt = self.model.nt_for(tn, dt)
        if self.source is not None and self.source.nt < nt:
            raise ValueError(
                f"source holds {self.source.nt} samples but {nt} steps requested"
            )
        resuming = (
            checkpoint is not None
            and getattr(checkpoint, "resume", False)
            and checkpoint.store.latest() is not None
        )
        if reset and not resuming:
            self.zero_fields()
            if self.receivers is not None:
                self.receivers.data[...] = 0.0
        schedule = schedule or NaiveSchedule()
        plan = self.op.apply(
            time_M=nt,
            dt=dt,
            schedule=schedule,
            sparse_mode=sparse_mode,
            engine=engine,
            health=health,
            checkpoint=checkpoint,
            faults=faults,
            abft=abft,
            strict_engine=strict_engine,
            telemetry=telemetry,
            breaker=breaker,
            step_cache=step_cache,
        )
        rec = self.receivers.data.copy() if self.receivers is not None else None
        return rec, plan

    # -- accounting used by the performance model -------------------------------------
    def time_stepped_state(self) -> List[TimeFunction]:
        return list(self.fields)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(so={self.space_order}, model={self.model!r})"
