"""Anisotropic acoustic (TTI) propagator — §III-B.

Pseudo-acoustic tilted-transverse-isotropy: a coupled system of two scalar
PDEs over wavefields ``p`` and ``q`` with a *rotated* anisotropic Laplacian.
The rotated vertical operator is built, as in Eq. (2) of the paper, from the
directional first derivative

    D_zbar = sin(theta)cos(phi) d/dx + sin(theta)sin(phi) d/dy + cos(theta) d/dz

applied twice (via an explicit temporary, i.e. a second sweep per timestep --
the multi-grid wavefront case of Fig. 8b), with the horizontal operator
recovered as ``H0 = laplace - Hz``.  The coupled updates follow the standard
pseudo-acoustic form (Alkhalifah/Zhang, refs [57]-[61] of the paper)::

    m * p.dt2 + damp * p.dt = (1+2*eps) * H0(p) + sqrt(1+2*delta) * Hz(q)
    m * q.dt2 + damp * q.dt = sqrt(1+2*delta) * H0(p) + Hz(q)

The rotated operator drastically increases the flop count per point, moving
the kernel toward the compute-bound end — the property the paper's roofline
discussion exploits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dsl.equation import Eq, solve
from ..dsl.functions import Function, SparseTimeFunction, TimeFunction
from ..dsl.symbols import Add, Expr, Mul
from ..ir.operator import Operator
from .base import Propagator
from .model import SeismicModel

__all__ = ["TTIPropagator"]


class TTIPropagator(Propagator):
    """Coupled two-field anisotropic kernel with a two-sweep timestep."""

    kind = "tti"

    def __init__(
        self,
        model: SeismicModel,
        space_order: int = 8,
        source: Optional[SparseTimeFunction] = None,
        receivers: Optional[SparseTimeFunction] = None,
    ):
        if model.epsilon is None or model.delta is None or model.theta is None:
            raise ValueError(
                "TTI propagation needs a model with epsilon, delta and theta "
                "(and optionally phi) fields"
            )
        super().__init__(model, space_order, source, receivers)
        if space_order % 4:
            raise ValueError(
                "TTI uses first derivatives of order space_order//2 applied "
                "twice; space_order must be a multiple of 4"
            )
        grid = self.grid
        self.p = TimeFunction("p", grid, time_order=2, space_order=space_order)
        self.q = TimeFunction("q", grid, time_order=2, space_order=space_order)
        # rotated-derivative temporaries: one extra sweep per timestep
        self.tmp_p = TimeFunction("tmp_p", grid, time_order=1, space_order=space_order)
        self.tmp_q = TimeFunction("tmp_q", grid, time_order=1, space_order=space_order)
        self.fields = [self.p, self.q, self.tmp_p, self.tmp_q]

        # precomputed trigonometric / Thomsen coefficient fields
        theta = model.theta.data
        phi = model.phi.data if model.phi is not None else np.zeros_like(theta)
        self.sin_t_cos_p = self._coeff("sin_t_cos_p", np.sin(theta) * np.cos(phi))
        self.sin_t_sin_p = self._coeff("sin_t_sin_p", np.sin(theta) * np.sin(phi))
        self.cos_t = self._coeff("cos_t", np.cos(theta))
        self.eps2 = self._coeff("eps2", 1.0 + 2.0 * model.epsilon.data)
        self.sq_delta = self._coeff("sq_delta", np.sqrt(1.0 + 2.0 * model.delta.data))

    def _coeff(self, name: str, values: np.ndarray) -> Function:
        f = Function(name, self.grid, space_order=self.space_order)
        f.data = values
        return f

    # -- rotated operators ---------------------------------------------------------
    def _dzbar(self, f) -> Expr:
        """Directional derivative along the symmetry axis, order so//2."""
        so2 = self.space_order // 2
        g = self.grid
        return Add(
            Mul(self.sin_t_cos_p.indexify(), f.diff(g.dimension("x"), 1, fd_order=so2)),
            Mul(self.sin_t_sin_p.indexify(), f.diff(g.dimension("y"), 1, fd_order=so2))
            if g.ndim >= 3
            else Mul(0, f.indexify()),
            Mul(self.cos_t.indexify(), f.diff(g.dimensions[-1], 1, fd_order=so2)),
        )

    def _build(self) -> Operator:
        m, damp = self.model.m, self.model.damp
        p, q, tmp_p, tmp_q = self.p, self.q, self.tmp_p, self.tmp_q
        dt = self.grid.stepping_dim.spacing

        # sweep 1: rotated first derivatives of the current wavefields
        eq_tmp_p = Eq(tmp_p.indexify(), self._dzbar(p))
        eq_tmp_q = Eq(tmp_q.indexify(), self._dzbar(q))

        # sweep 2: coupled update, Hz = D_zbar(tmp), H0 = laplace - Hz
        hz_p = self._dzbar(tmp_p)
        hz_q = self._dzbar(tmp_q)
        h0_p = p.laplace - hz_p

        eps2 = self.eps2.indexify()
        sqd = self.sq_delta.indexify()
        res_p = m * p.dt2 + damp * p.dt - (eps2 * h0_p + sqd * hz_q)
        res_q = m * q.dt2 + damp * q.dt - (sqd * h0_p + hz_q)
        upd_p = Eq(p.forward, solve(res_p, p.forward))
        upd_q = Eq(q.forward, solve(res_q, q.forward))

        sparse = []
        if self.source is not None:
            # as in Devito's TTI example, the source drives both wavefields
            sparse.append(self.source.inject(p, expr=dt**2 / m))
            sparse.append(self.source.inject(q, expr=dt**2 / m))
        if self.receivers is not None:
            # the physical pressure observable is (p + q) / 2; measuring p
            # keeps one receiver set (the propagator exposes q for the rest)
            sparse.append(self.receivers.interpolate(p))
        return Operator([eq_tmp_p, eq_tmp_q, upd_p, upd_q], sparse=sparse, name="tti")
