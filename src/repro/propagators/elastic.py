"""Isotropic elastic propagator — §III-C.

First-order-in-time velocity--stress formulation (Virieux) on a staggered
grid, parametrised by the Lame parameters ``lambda``/``mu`` and density
``rho``::

    rho * dv/dt  = div(tau)
    dtau/dt      = lam * tr(grad v) * I + mu * (grad v + grad v^T)

Nine coupled state fields (three particle velocities + six stress-tensor
components), two sweeps per timestep (velocities from stresses, then stresses
from the *new* velocities) -- the heaviest data-movement kernel in the paper,
and the one whose wavefront angle must be widened by the sum of the two
sweeps' radii (Fig. 8b).

Staggering convention (3-D indices; ``+`` means a half-point offset):
``tii`` at (i,j,k); ``vx`` at (i+,j,k); ``vy`` at (i,j+,k); ``vz`` at
(i,j,k+); ``txy`` at (i+,j+,k); ``txz`` at (i+,j,k+); ``tyz`` at (i,j+,k+).
First derivatives use the staggered Fornberg weights of
:func:`repro.stencil.coefficients.staggered_weights` with side +1/-1 matching
those positions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..dsl.equation import Eq
from ..dsl.functions import Function, SparseTimeFunction, TimeFunction
from ..dsl.symbols import Add, Expr, Mul
from ..ir.operator import Operator
from .base import Propagator
from .model import SeismicModel

__all__ = ["ElasticPropagator"]


class ElasticPropagator(Propagator):
    """Velocity–stress staggered-grid kernel (time order 1)."""

    kind = "elastic"

    def __init__(
        self,
        model: SeismicModel,
        space_order: int = 8,
        source: Optional[SparseTimeFunction] = None,
        receivers: Optional[SparseTimeFunction] = None,
    ):
        if model.rho is None:
            raise ValueError("elastic propagation needs a model with a rho field")
        super().__init__(model, space_order, source, receivers)
        grid = self.grid
        if grid.ndim != 3:
            raise ValueError("the elastic propagator is implemented for 3-D grids")

        mk = lambda name: TimeFunction(name, grid, time_order=1, space_order=space_order)
        self.vx, self.vy, self.vz = mk("vx"), mk("vy"), mk("vz")
        self.txx, self.tyy, self.tzz = mk("txx"), mk("tyy"), mk("tzz")
        self.txy, self.txz, self.tyz = mk("txy"), mk("txz"), mk("tyz")
        self.fields = [
            self.vx, self.vy, self.vz,
            self.txx, self.tyy, self.tzz,
            self.txy, self.txz, self.tyz,
        ]

        # material fields: buoyancy b = 1/rho, Lame lam/mu from vp (and vs)
        rho = model.rho.data
        vp = model.vp.data
        vs = model.vs.data if model.vs is not None else vp / np.sqrt(3.0)
        mu = rho * vs**2
        lam = rho * vp**2 - 2.0 * mu
        self.b = self._coeff("b", 1.0 / rho)
        self.lam = self._coeff("lam", lam)
        self.mu = self._coeff("mu", mu)

    def _coeff(self, name: str, values: np.ndarray) -> Function:
        f = Function(name, self.grid, space_order=self.space_order)
        f.data = values
        return f

    def _build(self) -> Operator:
        g = self.grid
        x, y, z = g.dimensions
        dt = g.stepping_dim.spacing
        damp = self.model.damp.indexify()
        b, lam, mu = self.b.indexify(), self.lam.indexify(), self.mu.indexify()
        vx, vy, vz = self.vx, self.vy, self.vz
        txx, tyy, tzz = self.txx, self.tyy, self.tzz
        txy, txz, tyz = self.txy, self.txz, self.tyz

        # shorthand: staggered first derivative of the *current* buffer
        def dplus(f, dim):
            return f.diff_staggered(dim, side=1)

        def dminus(f, dim):
            return f.diff_staggered(dim, side=-1)

        # sponge factor applied multiplicatively (split-free damping)
        def damped(prev, incr):
            return Mul(Add(prev, incr), Add(1, Mul(-1, Mul(dt, damp))))

        # sweep 1: particle velocities from stresses at time t
        eq_vx = Eq(vx.forward, damped(vx.indexify(), dt * b * (
            dplus(txx, x) + dminus(txy, y) + dminus(txz, z))))
        eq_vy = Eq(vy.forward, damped(vy.indexify(), dt * b * (
            dminus(txy, x) + dplus(tyy, y) + dminus(tyz, z))))
        eq_vz = Eq(vz.forward, damped(vz.indexify(), dt * b * (
            dminus(txz, x) + dminus(tyz, y) + dplus(tzz, z))))

        # sweep 2: stresses from the *new* velocities (t+1)
        def d_new(func, dim, side):
            base = func.diff_staggered(dim, side=side)
            # move every access of `func` one step forward in time
            from ..dsl.symbols import Indexed

            mapping = {
                ix: ix.shift(g.stepping_dim, 1)
                for ix in base.atoms(Indexed)
                if ix.function is func
            }
            return base.subs(mapping)

        exx = d_new(vx, x, -1)
        eyy = d_new(vy, y, -1)
        ezz = d_new(vz, z, -1)
        div_v = exx + eyy + ezz

        eq_txx = Eq(txx.forward, damped(txx.indexify(), dt * (lam * div_v + 2 * mu * exx)))
        eq_tyy = Eq(tyy.forward, damped(tyy.indexify(), dt * (lam * div_v + 2 * mu * eyy)))
        eq_tzz = Eq(tzz.forward, damped(tzz.indexify(), dt * (lam * div_v + 2 * mu * ezz)))
        eq_txy = Eq(txy.forward, damped(txy.indexify(), dt * mu * (
            d_new(vx, y, 1) + d_new(vy, x, 1))))
        eq_txz = Eq(txz.forward, damped(txz.indexify(), dt * mu * (
            d_new(vx, z, 1) + d_new(vz, x, 1))))
        eq_tyz = Eq(tyz.forward, damped(tyz.indexify(), dt * mu * (
            d_new(vy, z, 1) + d_new(vz, y, 1))))

        sparse = []
        if self.source is not None:
            # explosive (pressure) source into the normal stresses, as in
            # Devito's elastic example: src.inject(tii.forward, expr=src*dt)
            for tii in (self.txx, self.tyy, self.tzz):
                sparse.append(self.source.inject(tii, expr=dt))
        if self.receivers is not None:
            # record the vertical particle velocity
            sparse.append(self.receivers.interpolate(self.vz))
        eqs = [eq_vx, eq_vy, eq_vz, eq_txx, eq_tyy, eq_tzz, eq_txy, eq_txz, eq_tyz]
        return Operator(eqs, sparse=sparse, name="elastic")
