"""Seismic source wavelets and acquisition geometry helpers.

The paper's experiments inject one time-dependent, spatially localised
Ricker wavelet and measure with a line/plane of receivers; the corner-case
study (Fig. 10) scales the number of sources, either scattered over an x-y
plane slice or densely over the whole 3-D volume.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dsl.functions import SparseTimeFunction
from ..dsl.grid import Grid

__all__ = [
    "ricker_wavelet",
    "gabor_wavelet",
    "time_axis",
    "point_source",
    "receiver_line",
    "plane_sources",
    "volume_sources",
]


def time_axis(t0: float, tn: float, dt: float) -> np.ndarray:
    """Sample times ``t0, t0+dt, ..., >= tn`` (inclusive of the end point)."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    nt = int(np.ceil((tn - t0) / dt)) + 1
    return t0 + dt * np.arange(nt)


def ricker_wavelet(f0: float, t: np.ndarray, t_shift: Optional[float] = None, amplitude: float = 1.0) -> np.ndarray:
    """Ricker (Mexican-hat) wavelet of peak frequency *f0*.

    ``t_shift`` defaults to ``1/f0`` so the wavelet effectively starts at
    zero yet is non-zero from the first samples -- the property the paper's
    affected-point probe (Listing 2) relies on.
    """
    if f0 <= 0:
        raise ValueError("peak frequency must be positive")
    t = np.asarray(t, dtype=np.float64)
    shift = 1.0 / f0 if t_shift is None else t_shift
    arg = np.pi * f0 * (t - shift)
    return amplitude * (1.0 - 2.0 * arg**2) * np.exp(-(arg**2))


def gabor_wavelet(f0: float, t: np.ndarray, t_shift: Optional[float] = None, amplitude: float = 1.0) -> np.ndarray:
    """Gabor wavelet: a Gaussian-windowed cosine, an alternative source."""
    if f0 <= 0:
        raise ValueError("peak frequency must be positive")
    t = np.asarray(t, dtype=np.float64)
    shift = 1.5 / f0 if t_shift is None else t_shift
    tau = t - shift
    return amplitude * np.exp(-2.0 * (f0 * tau) ** 2) * np.cos(2.0 * np.pi * f0 * tau)


def point_source(
    name: str,
    grid: Grid,
    nt: int,
    coordinates: np.ndarray,
    f0: float,
    dt: float,
    kind: str = "ricker",
) -> SparseTimeFunction:
    """A set of point sources sharing one wavelet of peak frequency *f0*."""
    coordinates = np.atleast_2d(np.asarray(coordinates, dtype=np.float64))
    src = SparseTimeFunction(name, grid, npoint=coordinates.shape[0], nt=nt, coordinates=coordinates)
    t = dt * np.arange(nt)
    if kind == "ricker":
        wavelet = ricker_wavelet(f0, t)
    elif kind == "gabor":
        wavelet = gabor_wavelet(f0, t)
    else:
        raise ValueError(f"unknown wavelet kind {kind!r}")
    src.data[:] = wavelet[:, None].astype(grid.dtype)
    return src


def receiver_line(
    name: str,
    grid: Grid,
    nt: int,
    npoint: int,
    depth: float,
    margin_fraction: float = 0.05,
) -> SparseTimeFunction:
    """A horizontal line of receivers along x at fixed depth (z)."""
    lo = [o + margin_fraction * e for o, e in zip(grid.origin, grid.extent)]
    hi = [o + (1 - margin_fraction) * e for o, e in zip(grid.origin, grid.extent)]
    coords = np.zeros((npoint, grid.ndim))
    coords[:, 0] = np.linspace(lo[0], hi[0], npoint)
    for d in range(1, grid.ndim - 1):
        coords[:, d] = (lo[d] + hi[d]) / 2.0
    coords[:, -1] = depth
    return SparseTimeFunction(name, grid, npoint=npoint, nt=nt, coordinates=coords)


def plane_sources(
    grid: Grid,
    nsources: int,
    depth_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    jitter: bool = True,
) -> np.ndarray:
    """Fig. 10a geometry: *nsources* off-the-grid points on one x-y plane."""
    rng = rng or np.random.default_rng(1234)
    coords = np.zeros((nsources, grid.ndim))
    lo = np.asarray(grid.origin)
    hi = lo + np.asarray(grid.extent)
    for d in range(grid.ndim - 1):
        coords[:, d] = rng.uniform(lo[d], hi[d], nsources)
    coords[:, -1] = lo[-1] + depth_fraction * (hi[-1] - lo[-1])
    if jitter:
        coords[:, -1] += rng.uniform(0.0, grid.spacing[-1] * 0.49, nsources)
        coords[:, -1] = np.minimum(coords[:, -1], hi[-1])
    return coords


def volume_sources(
    grid: Grid,
    nsources: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Fig. 10b geometry: *nsources* points densely/uniformly over the volume."""
    rng = rng or np.random.default_rng(4321)
    lo = np.asarray(grid.origin)
    hi = lo + np.asarray(grid.extent)
    return rng.uniform(lo, hi, size=(nsources, grid.ndim))
