"""Wave propagators of §III: isotropic acoustic, anisotropic acoustic (TTI)
and isotropic elastic, plus subsurface models and source machinery."""
from .acoustic import AcousticPropagator
from .base import Propagator
from .elastic import ElasticPropagator
from .model import CFL_COEFFICIENTS, SeismicModel, damping_profile, layered_velocity
from .source import (
    gabor_wavelet,
    plane_sources,
    point_source,
    receiver_line,
    ricker_wavelet,
    time_axis,
    volume_sources,
)
from .tti import TTIPropagator

__all__ = [
    "Propagator",
    "AcousticPropagator",
    "TTIPropagator",
    "ElasticPropagator",
    "SeismicModel",
    "layered_velocity",
    "damping_profile",
    "CFL_COEFFICIENTS",
    "ricker_wavelet",
    "gabor_wavelet",
    "time_axis",
    "point_source",
    "receiver_line",
    "plane_sources",
    "volume_sources",
]
