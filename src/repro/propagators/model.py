"""Subsurface models: velocities, Thomsen parameters, CFL and damping layers.

A :class:`SeismicModel` wraps a physical domain extended with ``nbl`` points
of absorbing boundary layer per side.  It owns the velocity (and, for TTI,
Thomsen/angle) fields defined over the *extended* grid, exposes the CFL
timestep and builds the damping mask used by every propagator (the paper's
"damping fields with absorbing boundary layers", §IV-B).

Velocities follow the seismic convention km/s (= m/ms) with spacings in
metres and times in milliseconds, matching the paper's 512 ms runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..dsl.functions import Function
from ..dsl.grid import Grid

__all__ = ["SeismicModel", "damping_profile", "layered_velocity", "CFL_COEFFICIENTS"]

#: dimensionless CFL coefficients dt <= C * h_min / v_max, per scheme kind,
#: in line with the values Devito's seismic examples use for 3-D grids
CFL_COEFFICIENTS: Dict[str, float] = {
    "acoustic": 0.38,
    "tti": 0.30,
    "elastic": 0.42,
}


def damping_profile(n: int, nbl: int) -> np.ndarray:
    """1-D absorbing-layer profile: 0 in the interior, growing to the edges.

    Uses the classic Sochacki-style polynomial+sine taper (as Devito):
    ``eta(d) = C * (d/nbl - sin(2*pi*d/nbl) / (2*pi))`` for distance ``d``
    into the layer.
    """
    if nbl < 0 or 2 * nbl >= n:
        raise ValueError(f"invalid boundary layer width {nbl} for {n} points")
    profile = np.zeros(n, dtype=np.float64)
    if nbl == 0:
        return profile
    coeff = 1.5 * np.log(1000.0) / 40.0
    d = np.arange(1, nbl + 1, dtype=np.float64) / nbl
    taper = coeff * (d - np.sin(2.0 * np.pi * d) / (2.0 * np.pi))
    profile[:nbl] = taper[::-1]
    profile[n - nbl :] = taper
    return profile


def layered_velocity(
    shape: Tuple[int, ...],
    v_top: float = 1.5,
    v_bottom: float = 3.5,
    nlayers: int = 4,
) -> np.ndarray:
    """A horizontally layered vp model (km/s), constant per depth slab."""
    if nlayers < 1:
        raise ValueError("need at least one layer")
    vp = np.empty(shape, dtype=np.float32)
    nz = shape[-1]
    edges = np.linspace(0, nz, nlayers + 1).astype(int)
    values = np.linspace(v_top, v_bottom, nlayers)
    for v, lo, hi in zip(values, edges[:-1], edges[1:]):
        vp[..., lo:hi] = v
    return vp


class SeismicModel:
    """Physical domain + absorbing layers + material parameter fields."""

    def __init__(
        self,
        shape: Tuple[int, ...],
        spacing: Tuple[float, ...],
        vp: np.ndarray | float,
        nbl: int = 10,
        space_order: int = 8,
        origin: Optional[Tuple[float, ...]] = None,
        dtype=np.float32,
        epsilon: Optional[np.ndarray | float] = None,
        delta: Optional[np.ndarray | float] = None,
        theta: Optional[np.ndarray | float] = None,
        phi: Optional[np.ndarray | float] = None,
        rho: Optional[np.ndarray | float] = None,
        vs: Optional[np.ndarray | float] = None,
    ):
        shape = tuple(int(s) for s in shape)
        spacing = tuple(float(h) for h in spacing)
        if len(spacing) != len(shape):
            raise ValueError("spacing rank must match shape rank")
        self.shape = shape
        self.spacing_values = spacing
        self.nbl = int(nbl)
        self.space_order = int(space_order)

        ext_shape = tuple(s + 2 * self.nbl for s in shape)
        extent = tuple(h * (s - 1) for h, s in zip(spacing, ext_shape))
        if origin is None:
            origin = (0.0,) * len(shape)
        # shift the origin so physical coordinates refer to the *interior*
        ext_origin = tuple(o - self.nbl * h for o, h in zip(origin, spacing))
        self.origin = tuple(origin)
        self.grid = Grid(shape=ext_shape, extent=extent, origin=ext_origin, dtype=dtype)

        self.vp = self._field("vp", vp)
        self.m = Function("m", self.grid, space_order=space_order)
        self.m.data = 1.0 / np.square(self.vp.data)
        self.damp = self._build_damping()

        self.epsilon = self._field("epsilon", epsilon) if epsilon is not None else None
        self.delta = self._field("delta", delta) if delta is not None else None
        self.theta = self._field("theta", theta) if theta is not None else None
        self.phi = self._field("phi", phi) if phi is not None else None
        self.rho = self._field("rho", rho) if rho is not None else None
        self.vs = self._field("vs", vs) if vs is not None else None

    # -- field plumbing ------------------------------------------------------------
    def _field(self, name: str, values: np.ndarray | float) -> Function:
        f = Function(name, self.grid, space_order=self.space_order)
        if np.isscalar(values):
            f.data = float(values)
        else:
            values = np.asarray(values)
            if values.shape == self.grid.shape:
                f.data = values
            elif values.shape == self.shape:
                f.data = self._extend(values)
            else:
                raise ValueError(
                    f"{name}: expected shape {self.shape} or {self.grid.shape}, "
                    f"got {values.shape}"
                )
        return f

    def _extend(self, interior: np.ndarray) -> np.ndarray:
        """Edge-replicate an interior array into the absorbing layers."""
        pad = [(self.nbl, self.nbl)] * interior.ndim
        return np.pad(interior, pad, mode="edge")

    def _build_damping(self) -> Function:
        damp = Function("damp", self.grid, space_order=self.space_order)
        total = np.zeros(self.grid.shape, dtype=np.float64)
        for axis, n in enumerate(self.grid.shape):
            profile = damping_profile(n, self.nbl)
            shape = [1] * len(self.grid.shape)
            shape[axis] = n
            total += profile.reshape(shape)
        damp.data = total
        return damp

    # -- timestepping --------------------------------------------------------------
    @property
    def vp_max(self) -> float:
        return float(self.vp.data.max())

    def critical_dt(self, kind: str = "acoustic", cfl: Optional[float] = None) -> float:
        """Largest stable timestep for the given scheme kind (ms)."""
        coeff = cfl if cfl is not None else CFL_COEFFICIENTS[kind]
        return coeff * min(self.spacing_values) / self.vp_max

    def validate_dt(
        self, dt: float, kind: str = "acoustic", cfl: Optional[float] = None
    ) -> float:
        """Check *dt* against the CFL limit for scheme *kind*.

        Returns the critical timestep; raises
        :class:`~repro.errors.StabilityViolation` (carrying ``dt``,
        ``critical`` and ``kind``) when *dt* exceeds it.  A tiny relative
        tolerance admits ``dt == critical_dt`` across FP round-off.
        """
        if dt <= 0:
            from ..errors import StabilityViolation

            raise StabilityViolation(
                f"dt must be positive, got {dt}", dt=dt, critical=None, kind=kind
            )
        crit = self.critical_dt(kind, cfl=cfl)
        if dt > crit * (1.0 + 1e-9):
            from ..errors import StabilityViolation

            raise StabilityViolation(
                f"dt={dt:g} ms violates the CFL limit {crit:g} ms for the "
                f"{kind} scheme (vp_max={self.vp_max:g} km/s, "
                f"h_min={min(self.spacing_values):g} m); the simulation would "
                "blow up",
                dt=dt,
                critical=crit,
                kind=kind,
            )
        return crit

    def nt_for(self, tn: float, dt: float) -> int:
        """Number of iterations to simulate *tn* milliseconds."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        return int(np.ceil(tn / dt))

    @property
    def domain_center(self) -> Tuple[float, ...]:
        return tuple(
            o + h * (s - 1) / 2.0
            for o, h, s in zip(self.origin, self.spacing_values, self.shape)
        )

    def __repr__(self) -> str:
        return (
            f"SeismicModel(shape={self.shape}, nbl={self.nbl}, "
            f"vp=[{self.vp.data.min():.2f}, {self.vp_max:.2f}] km/s)"
        )
