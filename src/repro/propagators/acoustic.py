"""Isotropic acoustic propagator — §III-A.

Second-order-in-time scalar wave equation with square slowness ``m = 1/c^2``,
damping boundary term and a point source::

    m * u.dt2 + damp * u.dt - laplace(u) = delta(x_s) q(t)

The symbolic definition below is line-for-line the paper's Listing
"Wave-equation symbolic definition".
"""

from __future__ import annotations

from typing import Optional

from ..dsl.equation import Eq, solve
from ..dsl.functions import SparseTimeFunction, TimeFunction
from ..ir.operator import Operator
from .base import Propagator
from .model import SeismicModel

__all__ = ["AcousticPropagator"]


class AcousticPropagator(Propagator):
    """Jacobi-like single-field kernel: the memory-bound end of the spectrum."""

    kind = "acoustic"

    def __init__(
        self,
        model: SeismicModel,
        space_order: int = 8,
        source: Optional[SparseTimeFunction] = None,
        receivers: Optional[SparseTimeFunction] = None,
    ):
        super().__init__(model, space_order, source, receivers)
        self.u = TimeFunction("u", self.grid, time_order=2, space_order=space_order)
        self.fields = [self.u]

    def _build(self) -> Operator:
        m, damp, u = self.model.m, self.model.damp, self.u
        dt = self.grid.stepping_dim.spacing

        eq = m * u.dt2 + damp * u.dt - u.laplace
        update = Eq(u.forward, solve(eq, u.forward))

        sparse = []
        if self.source is not None:
            sparse.append(self.source.inject(u, expr=dt**2 / m))
        if self.receivers is not None:
            sparse.append(self.receivers.interpolate(u))
        return Operator([update], sparse=sparse, name="acoustic")
