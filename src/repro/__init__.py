"""repro — reproduction of "Temporal blocking of finite-difference stencil
operators with sparse 'off-the-grid' sources" (Bisbas et al., 2021).

The package provides, from scratch:

* a Devito-style symbolic DSL for finite-difference operators
  (:mod:`repro.dsl`),
* a small compiler — dependence analysis, loop-nest IR, transformation
  passes, C code generation (:mod:`repro.ir`),
* the paper's contribution: precomputation of sparse off-the-grid source
  injection / receiver interpolation into grid-aligned structures
  (masks, source IDs, decomposed wavelets, compressed iteration spaces) and
  wave-front temporal-blocking schedules (:mod:`repro.core`),
* NumPy executors that run every schedule bit-compatibly
  (:mod:`repro.execution`),
* three industrial wave propagators — isotropic acoustic, anisotropic
  acoustic (TTI), isotropic elastic (:mod:`repro.propagators`),
* machine models (Broadwell/Skylake), cache simulation and a cache-aware
  roofline performance model (:mod:`repro.machine`),
* the autotuner and the benchmark harness regenerating every table and
  figure of the paper's evaluation (:mod:`repro.autotuning`,
  ``benchmarks/``).

Quickstart::

    from repro import (Grid, TimeFunction, Function, SparseTimeFunction,
                       Eq, solve, Operator, WavefrontSchedule)

    grid = Grid(shape=(64, 64, 64))
    u = TimeFunction("u", grid, time_order=2, space_order=8)
    m = Function("m", grid, space_order=8); m.data = 1.0 / 1.5**2
    src = SparseTimeFunction("src", grid, npoint=1, nt=101)
    dt_sym = grid.stepping_dim.spacing

    update = Eq(u.forward, solve(m * u.dt2 - u.laplace, u.forward))
    op = Operator([update], sparse=[src.inject(u, expr=dt_sym**2 / m)])
    op.apply(time_M=100, dt=1.0, schedule=WavefrontSchedule(tile=(32, 32)))
"""

from .core import (
    NaiveSchedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
    build_masks,
    decompose_receiver,
    decompose_source,
)
from .dsl import (
    Eq,
    Function,
    Grid,
    SparseTimeFunction,
    TimeFunction,
    solve,
)
from .errors import (
    CoordinateOutOfDomain,
    EngineCompilationError,
    EngineFallbackWarning,
    InjectedFault,
    InvalidTimeRange,
    KernelLintError,
    NumericalBlowup,
    PlanValidationError,
    ReproError,
    ScheduleLegalityError,
    StabilityViolation,
    StabilityWarning,
)
from .ir import Operator
from .telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "Grid",
    "Function",
    "TimeFunction",
    "SparseTimeFunction",
    "Eq",
    "solve",
    "Operator",
    "NaiveSchedule",
    "SpatialBlockSchedule",
    "WavefrontSchedule",
    "build_masks",
    "decompose_source",
    "decompose_receiver",
    # per-run tracing/counters (exporters live in repro.telemetry)
    "Telemetry",
    # structured error taxonomy (the runtime resilience layer lives in
    # repro.runtime; import it explicitly — it is not pulled in by default)
    "ReproError",
    "NumericalBlowup",
    "CoordinateOutOfDomain",
    "StabilityViolation",
    "EngineCompilationError",
    "KernelLintError",
    "ScheduleLegalityError",
    "InvalidTimeRange",
    "PlanValidationError",
    "InjectedFault",
    "StabilityWarning",
    "EngineFallbackWarning",
    "__version__",
]
