"""Grid functions: dense fields, time-stepped fields and sparse point sets.

These mirror Devito's ``Function`` / ``TimeFunction`` / ``SparseTimeFunction``
triple.  Dense functions carry their own NumPy storage (with halo) and expose
symbolic finite-difference derivatives built from Fornberg weights; sparse
functions carry off-the-grid coordinates plus a time series per point and
expose ``inject`` / ``interpolate``, the two off-the-grid operators whose data
dependencies this paper is about.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..stencil.coefficients import central_weights, staggered_weights, stencil_radius
from .grid import Dimension, Grid
from .symbols import Add, Expr, Indexed, Mul, Number, Pow, Symbol

__all__ = ["Function", "TimeFunction", "SparseTimeFunction", "Injection", "Interpolation"]


class DiscreteFunction:
    """Common machinery of dense grid functions.

    Storage includes a halo of ``space_order`` points per side, wide enough
    for any derivative (including composed first derivatives, as in the TTI
    rotated Laplacian) of the declared accuracy.
    """

    def __init__(self, name: str, grid: Grid, space_order: int = 2, dtype=None):
        if space_order < 2 or space_order % 2:
            raise ValueError(f"space order must be a positive even integer, got {space_order}")
        self.name = str(name)
        self.grid = grid
        self.space_order = int(space_order)
        self.halo = int(space_order)  # generous: supports nested derivatives
        self.dtype = np.dtype(dtype) if dtype is not None else grid.dtype
        self._allocate()

    # -- storage ------------------------------------------------------------------
    def _padded_shape(self) -> Tuple[int, ...]:
        return tuple(s + 2 * self.halo for s in self.grid.shape)

    def _allocate(self) -> None:
        self._data = np.zeros(self._padded_shape(), dtype=self.dtype)

    @property
    def data_with_halo(self) -> np.ndarray:
        """The full padded buffer (halo included)."""
        return self._data

    @property
    def data(self) -> np.ndarray:
        """Interior view (halo excluded); writable."""
        sl = tuple(slice(self.halo, self.halo + s) for s in self.grid.shape)
        return self._data[sl]

    @data.setter
    def data(self, value) -> None:
        self.data[...] = value

    # -- symbolic access -------------------------------------------------------
    @property
    def is_time_function(self) -> bool:
        return False

    def _base_offsets(self) -> Dict[Dimension, int]:
        return {d: 0 for d in self.grid.dimensions}

    def indexify(self) -> Indexed:
        """The centred access ``f[x, y, z]`` (plus ``t`` for time functions)."""
        return Indexed(self, self._base_offsets())

    # -- derivatives -----------------------------------------------------------
    def diff(self, dim: Dimension, deriv: int = 1, fd_order: Optional[int] = None) -> Expr:
        """Centred FD approximation of ``d^deriv f / d dim^deriv``."""
        if dim.is_time:
            raise ValueError("use dt/dt2 for time derivatives")
        order = fd_order or self.space_order
        offsets, weights = central_weights(deriv, order)
        base = self.indexify()
        terms = [
            Mul(Number(w), base.shift(dim, o))
            for o, w in zip(offsets, weights)
            if w != 0.0
        ]
        return Mul(Add(*terms), Pow(dim.spacing, Number(-deriv)))

    def diff_staggered(self, dim: Dimension, side: int = 1, fd_order: Optional[int] = None) -> Expr:
        """First derivative evaluated at ``dim +/- 1/2`` (staggered grids)."""
        order = fd_order or self.space_order
        offsets, weights = staggered_weights(1, order, side)
        base = self.indexify()
        terms = [
            Mul(Number(w), base.shift(dim, o))
            for o, w in zip(offsets, weights)
            if w != 0.0
        ]
        return Mul(Add(*terms), Pow(dim.spacing, Number(-1)))

    def _spatial(self, name: str) -> Dimension:
        return self.grid.dimension(name)

    @property
    def dx(self) -> Expr:
        return self.diff(self._spatial("x"), 1)

    @property
    def dy(self) -> Expr:
        return self.diff(self._spatial("y"), 1)

    @property
    def dz(self) -> Expr:
        return self.diff(self._spatial("z"), 1)

    @property
    def dx2(self) -> Expr:
        return self.diff(self._spatial("x"), 2)

    @property
    def dy2(self) -> Expr:
        return self.diff(self._spatial("y"), 2)

    @property
    def dz2(self) -> Expr:
        return self.diff(self._spatial("z"), 2)

    @property
    def laplace(self) -> Expr:
        """Sum of second derivatives over all spatial dimensions."""
        return Add(*[self.diff(d, 2) for d in self.grid.dimensions])

    # -- arithmetic: functions act like their centred access ----------------------
    def _expr(self) -> Expr:
        return self.indexify()

    def __add__(self, other):
        return self._expr() + other

    def __radd__(self, other):
        return other + self._expr()

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return other - self._expr()

    def __mul__(self, other):
        return self._expr() * other

    def __rmul__(self, other):
        return other * self._expr()

    def __truediv__(self, other):
        return self._expr() / other

    def __rtruediv__(self, other):
        return other / self._expr()

    def __neg__(self):
        return -self._expr()

    def __pow__(self, other):
        return self._expr() ** other

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, so={self.space_order})"


class Function(DiscreteFunction):
    """A time-invariant dense field (velocity model, damping mask, angles)."""


class TimeFunction(DiscreteFunction):
    """A time-stepped dense field with a circular buffer of time slices.

    ``time_order`` sets the number of past slices kept: a scheme of time order
    *k* needs ``k + 1`` live buffers (acoustic ``O(2, so)`` keeps three,
    elastic ``O(1, so)`` keeps two).
    """

    def __init__(self, name: str, grid: Grid, time_order: int = 2, space_order: int = 2, dtype=None):
        if time_order < 1:
            raise ValueError("time order must be >= 1")
        self.time_order = int(time_order)
        super().__init__(name, grid, space_order=space_order, dtype=dtype)

    @property
    def is_time_function(self) -> bool:
        return True

    @property
    def buffers(self) -> int:
        return self.time_order + 1

    def _allocate(self) -> None:
        self._data = np.zeros((self.buffers,) + self._padded_shape(), dtype=self.dtype)

    @property
    def data_with_halo(self) -> np.ndarray:
        return self._data

    @property
    def data(self) -> np.ndarray:
        sl = (slice(None),) + tuple(
            slice(self.halo, self.halo + s) for s in self.grid.shape
        )
        return self._data[sl]

    @data.setter
    def data(self, value) -> None:
        self.data[...] = value

    def buffer(self, t: int) -> np.ndarray:
        """Padded buffer holding logical timestep *t* (circular indexing)."""
        return self._data[t % self.buffers]

    def interior(self, t: int) -> np.ndarray:
        """Interior view of logical timestep *t*."""
        sl = tuple(slice(self.halo, self.halo + s) for s in self.grid.shape)
        return self.buffer(t)[sl]

    # -- time accesses/derivatives ------------------------------------------------
    def _base_offsets(self) -> Dict[Dimension, int]:
        offs: Dict[Dimension, int] = {self.grid.stepping_dim: 0}
        offs.update({d: 0 for d in self.grid.dimensions})
        return offs

    @property
    def forward(self) -> Indexed:
        return self.indexify().shift(self.grid.stepping_dim, 1)

    @property
    def backward(self) -> Indexed:
        return self.indexify().shift(self.grid.stepping_dim, -1)

    @property
    def dt(self) -> Expr:
        """First time derivative.

        Uses the centred form when three buffers are live, else forward Euler
        -- matching the discretisations the propagators in the paper use.
        """
        t = self.grid.stepping_dim
        base = self.indexify()
        if self.time_order >= 2:
            expr = Add(base.shift(t, 1), Mul(Number(-1), base.shift(t, -1)))
            return Mul(expr, Pow(Mul(Number(2), t.spacing), Number(-1)))
        expr = Add(base.shift(t, 1), Mul(Number(-1), base))
        return Mul(expr, Pow(t.spacing, Number(-1)))

    @property
    def dt2(self) -> Expr:
        """Second time derivative (requires time order >= 2)."""
        if self.time_order < 2:
            raise ValueError(f"{self.name}: dt2 requires time order >= 2")
        t = self.grid.stepping_dim
        base = self.indexify()
        expr = Add(
            base.shift(t, 1),
            Mul(Number(-2), base),
            base.shift(t, -1),
        )
        return Mul(expr, Pow(t.spacing, Number(-2)))


class Injection:
    """A pending off-the-grid source-injection operation.

    Represents ``field[t+offset, *neighbours(p)] += w(p) * scale(n) * data[t, p]``
    for every sparse point *p* and support neighbour *n*: the non-affine
    scatter of Listing 1 lines 6-9.  ``expr`` is a symbolic per-point scale
    factor over ``dt`` and time-invariant model fields, e.g. ``dt**2 / m`` in
    the acoustic propagator; it is evaluated at each affected grid point.
    """

    def __init__(self, sparse: "SparseTimeFunction", field: TimeFunction, expr=1.0, time_offset: int = 1):
        from .symbols import sympify

        self.sparse = sparse
        self.field = field
        self.expr = sympify(expr)
        self.time_offset = int(time_offset)

    def __repr__(self) -> str:
        return (
            f"Injection({self.sparse.name} -> {self.field.name}, "
            f"expr={self.expr}, t+{self.time_offset})"
        )


class Interpolation:
    """A pending off-the-grid measurement (receiver) operation.

    Represents ``data[t, p] = sum_n w_n(p) * field[t, n]`` for every sparse
    point *p*: the gather dual of :class:`Injection`.
    """

    def __init__(self, sparse: "SparseTimeFunction", field: TimeFunction, time_offset: int = 1):
        self.sparse = sparse
        self.field = field
        self.time_offset = int(time_offset)

    def __repr__(self) -> str:
        return f"Interpolation({self.field.name} -> {self.sparse.name})"


class SparseTimeFunction:
    """A set of off-the-grid points, each with a time series.

    Parameters
    ----------
    name:
        Symbolic name.
    grid:
        The grid the points live in (physical coordinates).
    npoint:
        Number of sparse points.
    nt:
        Number of timesteps stored.
    coordinates:
        ``(npoint, grid.ndim)`` physical coordinates; defaults to the domain
        centre for every point.
    """

    def __init__(
        self,
        name: str,
        grid: Grid,
        npoint: int,
        nt: int,
        coordinates: Optional[np.ndarray] = None,
    ):
        if npoint < 1:
            raise ValueError("need at least one sparse point")
        if nt < 1:
            raise ValueError("need at least one timestep")
        self.name = str(name)
        self.grid = grid
        self.npoint = int(npoint)
        self.nt = int(nt)
        if coordinates is None:
            centre = [o + e / 2.0 for o, e in zip(grid.origin, grid.extent)]
            coordinates = np.tile(centre, (npoint, 1))
        coordinates = np.atleast_2d(np.asarray(coordinates, dtype=np.float64))
        if coordinates.shape != (self.npoint, grid.ndim):
            raise ValueError(
                f"coordinates must have shape ({self.npoint}, {grid.ndim}), "
                f"got {coordinates.shape}"
            )
        # pre-flight: reject out-of-domain points at construction (naming the
        # offending indices and coordinates) instead of at the first injection
        from .interpolation import validate_coordinates

        validate_coordinates(coordinates, grid, name=self.name)
        self.coordinates = coordinates
        self.data = np.zeros((self.nt, self.npoint), dtype=grid.dtype)

    # -- the two off-the-grid operators -----------------------------------------
    def inject(self, field: TimeFunction, expr=1.0, time_offset: int = 1) -> Injection:
        """Schedule injection of this point set into *field*.

        ``expr`` is the symbolic scale factor (e.g. ``dt**2 / m``) of Devito's
        ``src.inject(u.forward, expr=src*dt**2/m)``; it may reference ``dt``
        and centred accesses of time-invariant model fields, and is evaluated
        per affected grid point by the executors.
        """
        self._check_field(field)
        return Injection(self, field, expr, time_offset)

    def interpolate(self, field: TimeFunction, time_offset: int = 1) -> Interpolation:
        """Schedule interpolation (measurement) of *field* at these points.

        The default ``time_offset=1`` samples the *newly written* timestep:
        iteration ``t`` records ``data[t+1] = field[t+1]`` once the stencil
        update and any injections for ``t+1`` have completed (``data[0]``
        keeps the initial condition).
        """
        self._check_field(field)
        return Interpolation(self, field, time_offset)

    def _check_field(self, field: TimeFunction) -> None:
        if not isinstance(field, TimeFunction):
            raise TypeError("sparse operators act on TimeFunction fields")
        if field.grid is not self.grid:
            raise ValueError("sparse points and field live on different grids")

    def __repr__(self) -> str:
        return f"SparseTimeFunction({self.name}, npoint={self.npoint}, nt={self.nt})"
