"""Off-the-grid interpolation/injection coefficient machinery.

Sources and receivers live at arbitrary physical coordinates ("off the
grid").  Injection *scatters* a point's amplitude onto its ``2^d``
surrounding grid points with multilinear weights (Fig. 3a of the paper);
interpolation *gathers* the wavefield at those neighbours with the same
weights (Fig. 3b).  Both executors and the precomputation scheme
(:mod:`repro.core`) are built on the routines here, so the scheme stays
independent of the interpolation type: swap in a different
``(offsets, weights)`` generator and everything downstream still works.
"""

from __future__ import annotations

from itertools import product
from typing import Tuple

import numpy as np

from ..errors import CoordinateOutOfDomain
from .grid import Grid

__all__ = [
    "validate_coordinates",
    "locate_points",
    "corner_offsets",
    "multilinear_coefficients",
    "support_points",
    "inject_values",
    "interpolate_values",
]


def validate_coordinates(
    coords: np.ndarray, grid: Grid, name: str = "sparse", atol: float = 0.0
) -> np.ndarray:
    """Batch-validate physical coordinates against the domain box.

    Returns the logical (grid-index-unit) coordinates.  On failure raises
    :class:`~repro.errors.CoordinateOutOfDomain` naming each offending point
    *index* and its physical coordinates — the error a pre-flight check can
    act on, instead of a bare "a point is outside" deep in the first
    injection.  ``atol`` is a tolerance in logical units on both faces.
    """
    coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
    logical = grid.physical_to_logical(coords)
    upper = np.asarray(grid.shape, dtype=np.float64) - 1.0
    bad = np.any((logical < -atol) | (logical > upper + atol), axis=1)
    if np.any(bad):
        indices = np.flatnonzero(bad)
        shown = ", ".join(
            f"point {i} at {tuple(round(float(c), 6) for c in coords[i])}"
            for i in indices[:5]
        )
        if indices.size > 5:
            shown += f", ... ({indices.size - 5} more)"
        domain = " x ".join(
            f"[{o:g}, {o + e:g}]" for o, e in zip(grid.origin, grid.extent)
        )
        raise CoordinateOutOfDomain(
            f"{name}: {indices.size} point(s) outside the domain {domain}: {shown}",
            field=name,
            indices=indices,
            coordinates=coords[bad].copy(),
        )
    return logical


def locate_points(coords: np.ndarray, grid: Grid) -> Tuple[np.ndarray, np.ndarray]:
    """Split physical coordinates into base grid indices and fractional parts.

    Returns ``(base, frac)`` with ``base`` int64 of shape ``(npoint, ndim)``
    and ``frac`` in ``[0, 1]``; points exactly on the upper domain face are
    attached to the last interior cell with ``frac == 1`` so the support stays
    in bounds.
    """
    logical = validate_coordinates(coords, grid, name="off-the-grid", atol=1e-9)
    upper = np.asarray(grid.shape, dtype=np.float64) - 1.0
    logical = np.clip(logical, 0.0, upper)
    base = np.floor(logical).astype(np.int64)
    # attach boundary points to the last cell so base+1 is a valid index
    last_cell = np.asarray(grid.shape, dtype=np.int64) - 2
    base = np.minimum(base, np.maximum(last_cell, 0))
    frac = logical - base
    return base, frac


def corner_offsets(ndim: int) -> np.ndarray:
    """The ``2^ndim`` unit-cell corner offsets, shape ``(2^ndim, ndim)``."""
    return np.array(list(product((0, 1), repeat=ndim)), dtype=np.int64)


def multilinear_coefficients(frac: np.ndarray) -> np.ndarray:
    """Multilinear (bi/tri-linear) weights for each point.

    ``frac`` has shape ``(npoint, ndim)``; the result has shape
    ``(npoint, 2^ndim)`` with rows summing to one: the partition-of-unity
    property that conserves injected amplitude.
    """
    frac = np.atleast_2d(np.asarray(frac, dtype=np.float64))
    npoint, ndim = frac.shape
    corners = corner_offsets(ndim)  # (2^d, d)
    # weight per corner: prod over dims of (frac if corner==1 else 1-frac)
    w = np.ones((npoint, corners.shape[0]), dtype=np.float64)
    for d in range(ndim):
        take_hi = corners[:, d] == 1  # (2^d,)
        w *= np.where(take_hi[None, :], frac[:, d : d + 1], 1.0 - frac[:, d : d + 1])
    return w


def support_points(coords: np.ndarray, grid: Grid) -> Tuple[np.ndarray, np.ndarray]:
    """All affected grid points and their weights for a set of sparse points.

    Returns ``(indices, weights)`` where ``indices`` has shape
    ``(npoint, 2^ndim, ndim)`` (absolute grid indices of each point's support)
    and ``weights`` has shape ``(npoint, 2^ndim)``.
    """
    base, frac = locate_points(coords, grid)
    corners = corner_offsets(grid.ndim)
    indices = base[:, None, :] + corners[None, :, :]
    weights = multilinear_coefficients(frac)
    return indices, weights


def inject_values(
    buffer: np.ndarray,
    halo: int,
    indices: np.ndarray,
    weights: np.ndarray,
    amplitudes: np.ndarray,
) -> None:
    """Scatter-add ``amplitudes[p] * weights[p, c]`` onto the support points.

    ``buffer`` is a *padded* field slice (halo included); ``indices`` are
    interior grid indices as returned by :func:`support_points`.  Uses
    ``np.add.at`` so points sharing support accumulate correctly.
    """
    amplitudes = np.asarray(amplitudes)
    npoint, ncorner, ndim = indices.shape
    flat_idx = tuple(indices[..., d].ravel() + halo for d in range(ndim))
    contributions = (weights * amplitudes[:, None]).astype(buffer.dtype, copy=False)
    np.add.at(buffer, flat_idx, contributions.ravel())


def interpolate_values(
    buffer: np.ndarray,
    halo: int,
    indices: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Gather field values at the support points, returning one value per point."""
    npoint, ncorner, ndim = indices.shape
    flat_idx = tuple(indices[..., d].ravel() + halo for d in range(ndim))
    sampled = buffer[flat_idx].reshape(npoint, ncorner)
    return (sampled * weights).sum(axis=1)
