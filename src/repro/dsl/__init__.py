"""Devito-style symbolic DSL for finite-difference operators.

Public surface::

    from repro.dsl import Grid, Function, TimeFunction, SparseTimeFunction
    from repro.dsl import Eq, solve, Symbol, sin, cos, sqrt

A wave-equation solver is written exactly as in the paper's Listing
("Wave-equation symbolic definition")::

    grid = Grid(shape=(64, 64, 64))
    u = TimeFunction("u", grid, time_order=2, space_order=8)
    m = Function("m", grid, space_order=8)
    eq = m * u.dt2 - u.laplace
    update = Eq(u.forward, solve(eq, u.forward))
    src_op = src.inject(u, expr_scale=...)    # off-the-grid scatter
    rec_op = rec.interpolate(u)               # off-the-grid gather
"""

from .equation import Eq, solve
from .functions import (
    Function,
    Injection,
    Interpolation,
    SparseTimeFunction,
    TimeFunction,
)
from .grid import Dimension, Grid, SteppingDimension
from .symbols import (
    Add,
    Call,
    Expr,
    Indexed,
    Mul,
    NonLinearError,
    Number,
    Pow,
    Symbol,
    cos,
    exp,
    sin,
    sqrt,
    sympify,
    tan,
)

__all__ = [
    "Grid",
    "Dimension",
    "SteppingDimension",
    "Function",
    "TimeFunction",
    "SparseTimeFunction",
    "Injection",
    "Interpolation",
    "Eq",
    "solve",
    "Expr",
    "Symbol",
    "Number",
    "Add",
    "Mul",
    "Pow",
    "Call",
    "Indexed",
    "sympify",
    "sin",
    "cos",
    "tan",
    "sqrt",
    "exp",
    "NonLinearError",
]
