"""Computational grid and dimension abstractions (Devito-style).

A :class:`Grid` owns the spatial :class:`Dimension` objects, the stepping
(time) dimension, the physical extent/spacing, and the default floating-point
type (single precision, as in the paper's experiments).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .symbols import Symbol

__all__ = ["Dimension", "SteppingDimension", "Grid"]


class Dimension:
    """A named spatial dimension with an associated spacing symbol ``h_<name>``."""

    is_time = False

    def __init__(self, name: str):
        self.name = str(name)
        self.spacing = Symbol(f"h_{self.name}")
        self.symbol = Symbol(self.name)

    def __repr__(self) -> str:
        return f"Dimension({self.name})"

    def __hash__(self) -> int:
        return hash(("Dimension", self.name))

    def __eq__(self, other) -> bool:
        return isinstance(other, Dimension) and other.is_time == self.is_time and other.name == self.name


class SteppingDimension(Dimension):
    """The time-stepping dimension; its spacing symbol is ``dt``."""

    is_time = True

    def __init__(self, name: str = "t"):
        super().__init__(name)
        self.spacing = Symbol("dt")


class Grid:
    """A rectilinear grid over a physical box.

    Parameters
    ----------
    shape:
        Number of grid points along each spatial dimension (1-, 2- or 3-D).
    extent:
        Physical size of the domain along each dimension.  Defaults to
        ``(shape[i]-1) * 10.0`` (10 m spacing, as the paper's isotropic runs).
    origin:
        Physical coordinates of grid point ``(0, ..., 0)``.
    dtype:
        Field scalar type; the paper models in single precision.
    """

    _DIM_NAMES = ("x", "y", "z")

    def __init__(
        self,
        shape: Tuple[int, ...],
        extent: Optional[Tuple[float, ...]] = None,
        origin: Optional[Tuple[float, ...]] = None,
        dtype=np.float32,
    ):
        shape = tuple(int(s) for s in shape)
        if not 1 <= len(shape) <= 3:
            raise ValueError(f"grid must be 1-, 2- or 3-D, got shape {shape}")
        if any(s < 2 for s in shape):
            raise ValueError(f"each dimension needs >= 2 points, got {shape}")
        self.shape = shape
        self.ndim = len(shape)
        if extent is None:
            extent = tuple((s - 1) * 10.0 for s in shape)
        extent = tuple(float(e) for e in extent)
        if len(extent) != self.ndim:
            raise ValueError("extent rank must match shape rank")
        self.extent = extent
        if origin is None:
            origin = (0.0,) * self.ndim
        origin = tuple(float(o) for o in origin)
        if len(origin) != self.ndim:
            raise ValueError("origin rank must match shape rank")
        self.origin = origin
        self.dtype = np.dtype(dtype)

        self.dimensions: Tuple[Dimension, ...] = tuple(
            Dimension(n) for n in self._DIM_NAMES[: self.ndim]
        )
        self.stepping_dim = SteppingDimension("t")
        self.spacing: Tuple[float, ...] = tuple(
            e / (s - 1) for e, s in zip(self.extent, self.shape)
        )

    # -- symbolic helpers ----------------------------------------------------
    def spacing_map(self) -> Dict[Symbol, float]:
        """Map each spacing symbol ``h_x``... to its numeric value."""
        return {d.spacing: h for d, h in zip(self.dimensions, self.spacing)}

    @property
    def time_dim(self) -> SteppingDimension:
        return self.stepping_dim

    def dimension(self, name: str) -> Dimension:
        for d in self.dimensions:
            if d.name == name:
                return d
        raise KeyError(f"no spatial dimension named {name!r}")

    # -- coordinate transforms --------------------------------------------------
    def physical_to_logical(self, coords: np.ndarray) -> np.ndarray:
        """Convert physical coordinates (npoints, ndim) to grid-index units."""
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        if coords.shape[1] != self.ndim:
            raise ValueError(
                f"coordinate rank {coords.shape[1]} != grid rank {self.ndim}"
            )
        origin = np.asarray(self.origin)
        spacing = np.asarray(self.spacing)
        return (coords - origin) / spacing

    def contains_points(self, coords: np.ndarray) -> np.ndarray:
        """Boolean mask of physical points lying inside the domain box."""
        logical = self.physical_to_logical(coords)
        upper = np.asarray(self.shape, dtype=np.float64) - 1.0
        return np.all((logical >= 0.0) & (logical <= upper), axis=1)

    @property
    def npoints(self) -> int:
        return int(np.prod(self.shape))

    def __repr__(self) -> str:
        return f"Grid(shape={self.shape}, extent={self.extent}, dtype={self.dtype.name})"
