"""Symbolic update equations and the explicit-scheme solver.

``Eq(lhs, rhs)`` states a pointwise equality; :func:`solve` isolates the
unknown (normally ``u.forward``) from an implicit residual form, which is how
the wave-equation listings in the paper are written::

    eq = m * u.dt2 - u.laplace          # residual form, == 0
    update = Eq(u.forward, solve(eq, u.forward))
"""

from __future__ import annotations

from typing import Union

from .functions import DiscreteFunction
from .symbols import Expr, Indexed, Mul, NonLinearError, Number, Pow, S_ZERO, sympify

__all__ = ["Eq", "solve"]


class Eq:
    """A pointwise assignment ``lhs <- rhs`` over the iteration space.

    ``lhs`` must be a single :class:`~repro.dsl.symbols.Indexed` access (the
    written field); ``rhs`` any expression over grid accesses and constants.
    """

    def __init__(self, lhs: Union[Indexed, DiscreteFunction], rhs) -> None:
        if isinstance(lhs, DiscreteFunction):
            lhs = lhs.indexify()
        if not isinstance(lhs, Indexed):
            raise TypeError(f"Eq lhs must be an Indexed access, got {type(lhs).__name__}")
        self.lhs = lhs
        self.rhs = sympify(rhs)

    @property
    def write_function(self):
        return self.lhs.function

    def reads(self):
        """All Indexed accesses on the right-hand side."""
        return sorted(self.rhs.atoms(Indexed), key=str)

    def subs(self, mapping) -> "Eq":
        return Eq(self.lhs, self.rhs.subs(mapping))

    def __repr__(self) -> str:
        return f"Eq({self.lhs} <- {self.rhs})"


def solve(expr: Expr, target: Union[Indexed, DiscreteFunction]) -> Expr:
    """Solve ``expr == 0`` for *target*, which must occur linearly.

    Decomposes ``expr = a*target + b`` and returns ``-b / a``.  Raises
    :class:`~repro.dsl.symbols.NonLinearError` for nonlinear occurrences and
    :class:`ValueError` if *target* does not occur at all.
    """
    if isinstance(target, DiscreteFunction):
        target = target.indexify()
    expr = sympify(expr)
    a, b = expr.as_linear(target)
    if a == S_ZERO:
        raise ValueError(f"target {target} does not occur in expression")
    return Mul(Number(-1), b, Pow(a, Number(-1)))
