"""Minimal symbolic expression engine for finite-difference DSLs.

This module implements the expression substrate on which the Devito-like DSL
(:mod:`repro.dsl`) is built.  It is intentionally *not* a general computer
algebra system: it supports exactly the algebra needed to express, lower and
solve explicit finite-difference update equations --

* flat n-ary ``Add`` / ``Mul`` with constant folding,
* ``Pow`` with numeric exponents,
* ``Symbol`` (dimension indices, spacing/step constants),
* ``Indexed`` accesses into grid functions with per-dimension offsets,
* elementary function calls (``sin``/``cos``/``sqrt``/...),
* linear-coefficient extraction (``as_linear``) used by :func:`repro.dsl.solve`,
* substitution and structural traversal.

Expressions are immutable and hashable; construction canonicalises so that
structurally equal expressions compare equal, which the compiler relies on for
common-subexpression detection and dependence analysis.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, Iterator, Tuple

__all__ = [
    "Expr",
    "Number",
    "Symbol",
    "Add",
    "Mul",
    "Pow",
    "Call",
    "Indexed",
    "sympify",
    "sin",
    "cos",
    "tan",
    "sqrt",
    "exp",
    "S_ZERO",
    "S_ONE",
    "NonLinearError",
]


class NonLinearError(ValueError):
    """Raised when a linear decomposition is requested of a nonlinear term."""


def sympify(value: Any) -> "Expr":
    """Coerce *value* (Expr, int, float) into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # guard: bool is an int subclass
        raise TypeError(f"cannot sympify bool {value!r}")
    if isinstance(value, (int, float)):
        return Number(value)
    if hasattr(value, "indexify"):  # grid functions stand for their centred access
        return value.indexify()
    raise TypeError(f"cannot sympify {type(value).__name__}: {value!r}")


class Expr:
    """Base class of all symbolic expressions.

    Subclasses must populate ``self._args`` (a tuple uniquely identifying the
    node) and are immutable afterwards.
    """

    __slots__ = ("_args", "_hash")

    _args: Tuple[Any, ...]
    _hash: int

    # -- construction helpers ------------------------------------------------
    def _finalise(self, args: Tuple[Any, ...]) -> None:
        object.__setattr__(self, "_args", args)
        object.__setattr__(self, "_hash", hash((type(self).__name__, args)))

    def __setattr__(self, name: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("expressions are immutable")

    # -- identity ------------------------------------------------------------
    @property
    def args(self) -> Tuple[Any, ...]:
        return self._args

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        return type(self) is type(other) and self._args == other._args

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # -- arithmetic operators --------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return Add(self, sympify(other))

    def __radd__(self, other: Any) -> "Expr":
        return Add(sympify(other), self)

    def __sub__(self, other: Any) -> "Expr":
        return Add(self, Mul(Number(-1), sympify(other)))

    def __rsub__(self, other: Any) -> "Expr":
        return Add(sympify(other), Mul(Number(-1), self))

    def __mul__(self, other: Any) -> "Expr":
        return Mul(self, sympify(other))

    def __rmul__(self, other: Any) -> "Expr":
        return Mul(sympify(other), self)

    def __truediv__(self, other: Any) -> "Expr":
        return Mul(self, Pow(sympify(other), Number(-1)))

    def __rtruediv__(self, other: Any) -> "Expr":
        return Mul(sympify(other), Pow(self, Number(-1)))

    def __pow__(self, other: Any) -> "Expr":
        return Pow(self, sympify(other))

    def __neg__(self) -> "Expr":
        return Mul(Number(-1), self)

    def __pos__(self) -> "Expr":
        return self

    # -- traversal -------------------------------------------------------------
    def children(self) -> Tuple["Expr", ...]:
        """Immediate sub-expressions (override in composite nodes)."""
        return ()

    def preorder(self) -> Iterator["Expr"]:
        """Yield self and all descendants in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def free_symbols(self) -> frozenset:
        """The set of :class:`Symbol` leaves in this expression."""
        return frozenset(n for n in self.preorder() if isinstance(n, Symbol))

    def atoms(self, *types: type) -> frozenset:
        """All descendant nodes that are instances of *types*."""
        if not types:
            types = (Expr,)
        return frozenset(n for n in self.preorder() if isinstance(n, types))

    def contains(self, target: "Expr") -> bool:
        return any(n == target for n in self.preorder())

    # -- rewriting ---------------------------------------------------------------
    def subs(self, mapping: Dict["Expr", Any]) -> "Expr":
        """Simultaneous structural substitution."""
        mapping = {k: sympify(v) for k, v in mapping.items()}
        return self._subs(mapping)

    def _subs(self, mapping: Dict["Expr", "Expr"]) -> "Expr":
        if self in mapping:
            return mapping[self]
        return self._rebuild_subs(mapping)

    def _rebuild_subs(self, mapping: Dict["Expr", "Expr"]) -> "Expr":
        return self

    # -- linear decomposition ------------------------------------------------------
    def as_linear(self, target: "Expr") -> Tuple["Expr", "Expr"]:
        """Decompose ``self == a*target + b`` with ``target`` not in ``a``/``b``.

        Raises :class:`NonLinearError` if *target* occurs nonlinearly.
        """
        if self == target:
            return (S_ONE, S_ZERO)
        if not self.contains(target):
            return (S_ZERO, self)
        raise NonLinearError(f"{target} occurs nonlinearly in {self}")

    # -- numeric evaluation ------------------------------------------------------
    def evaluate(self, env: Dict["Expr", Any], functions: Dict[str, Callable] | None = None) -> Any:
        """Evaluate numerically given a leaf environment.

        ``env`` maps :class:`Symbol`/:class:`Indexed` leaves to numeric values
        (scalars or NumPy arrays).  ``functions`` maps call names to callables
        (defaults to :mod:`math`-compatible NumPy ufuncs supplied by caller).
        """
        raise NotImplementedError

    # -- misc ---------------------------------------------------------------------
    def is_number(self) -> bool:
        return isinstance(self, Number)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


class Number(Expr):
    """A numeric literal (int or float)."""

    __slots__ = ("value",)

    def __new__(cls, value):
        if isinstance(value, Number):
            return value
        self = object.__new__(cls)
        if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
            # canonicalise integral floats so 2.0 == 2 structurally
            value = int(value)
        object.__setattr__(self, "value", value)
        self._finalise((value,))
        return self

    def evaluate(self, env, functions=None):
        return self.value

    def __str__(self) -> str:
        return str(self.value)


S_ZERO = Number(0)
S_ONE = Number(1)
S_NEG_ONE = Number(-1)


class Symbol(Expr):
    """A named scalar symbol (dimension index, spacing, dt, ...)."""

    __slots__ = ("name",)

    def __new__(cls, name: str):
        self = object.__new__(cls)
        object.__setattr__(self, "name", str(name))
        self._finalise((str(name),))
        return self

    def evaluate(self, env, functions=None):
        try:
            return env[self]
        except KeyError:
            raise KeyError(f"no value bound for symbol {self.name!r}") from None

    def __str__(self) -> str:
        return self.name


def _flatten(cls, args: Iterable[Expr]) -> Iterator[Expr]:
    for a in args:
        if type(a) is cls:
            yield from a.children()
        else:
            yield a


class Add(Expr):
    """Flat n-ary addition with constant folding.

    ``Add(a, b, c)`` folds numeric terms, drops zeros and collapses to the
    single remaining operand where possible.
    """

    __slots__ = ()

    def __new__(cls, *operands):
        terms = []
        const = 0
        for a in _flatten(cls, (sympify(o) for o in operands)):
            if isinstance(a, Number):
                const += a.value
            else:
                terms.append(a)
        if const != 0:
            terms.append(Number(const))
        if not terms:
            return S_ZERO
        if len(terms) == 1:
            return terms[0]
        self = object.__new__(cls)
        self._finalise(tuple(terms))
        return self

    def children(self):
        return self._args

    def _rebuild_subs(self, mapping):
        return Add(*[a._subs(mapping) for a in self._args])

    def as_linear(self, target):
        coeffs, rests = [], []
        for term in self._args:
            a, b = term.as_linear(target)
            coeffs.append(a)
            rests.append(b)
        return (Add(*coeffs), Add(*rests))

    def evaluate(self, env, functions=None):
        result = self._args[0].evaluate(env, functions)
        for term in self._args[1:]:
            result = result + term.evaluate(env, functions)
        return result

    def __str__(self) -> str:
        parts = [str(a) for a in self._args]
        return "(" + " + ".join(parts) + ")"


class Mul(Expr):
    """Flat n-ary multiplication with constant folding and zero absorption."""

    __slots__ = ()

    def __new__(cls, *operands):
        factors = []
        const = 1
        for a in _flatten(cls, (sympify(o) for o in operands)):
            if isinstance(a, Number):
                if a.value == 0:
                    return S_ZERO
                const *= a.value
            else:
                factors.append(a)
        if const != 1:
            factors.insert(0, Number(const))
        if not factors:
            return S_ONE
        if len(factors) == 1:
            return factors[0]
        self = object.__new__(cls)
        self._finalise(tuple(factors))
        return self

    def children(self):
        return self._args

    def _rebuild_subs(self, mapping):
        return Mul(*[a._subs(mapping) for a in self._args])

    def as_linear(self, target):
        dependent = [f for f in self._args if f.contains(target)]
        if not dependent:
            return (S_ZERO, self)
        if len(dependent) > 1:
            raise NonLinearError(f"{target} occurs nonlinearly in {self}")
        rest = [f for f in self._args if not f.contains(target)]
        a, b = dependent[0].as_linear(target)
        return (Mul(*rest, a), Mul(*rest, b))

    def evaluate(self, env, functions=None):
        result = self._args[0].evaluate(env, functions)
        for factor in self._args[1:]:
            result = result * factor.evaluate(env, functions)
        return result

    def __str__(self) -> str:
        return "*".join(
            f"({a})" if isinstance(a, Add) else str(a) for a in self._args
        )


class Pow(Expr):
    """Power ``base ** exponent``; folds numeric operands."""

    __slots__ = ()

    def __new__(cls, base, exponent):
        base = sympify(base)
        exponent = sympify(exponent)
        if isinstance(exponent, Number):
            if exponent.value == 0:
                return S_ONE
            if exponent.value == 1:
                return base
            if isinstance(base, Number):
                value = base.value ** exponent.value
                return Number(value)
        self = object.__new__(cls)
        self._finalise((base, exponent))
        return self

    @property
    def base(self) -> Expr:
        return self._args[0]

    @property
    def exponent(self) -> Expr:
        return self._args[1]

    def children(self):
        return self._args

    def _rebuild_subs(self, mapping):
        return Pow(self.base._subs(mapping), self.exponent._subs(mapping))

    def as_linear(self, target):
        if self.contains(target):
            raise NonLinearError(f"{target} occurs nonlinearly in {self}")
        return (S_ZERO, self)

    def evaluate(self, env, functions=None):
        return self.base.evaluate(env, functions) ** self.exponent.evaluate(env, functions)

    def __str__(self) -> str:
        return f"({self.base})**({self.exponent})"


_MATH_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "sqrt": math.sqrt,
    "exp": math.exp,
}


class Call(Expr):
    """Elementary function application, e.g. ``cos(theta[x,y,z])``."""

    __slots__ = ("name",)

    def __new__(cls, name: str, argument):
        argument = sympify(argument)
        if isinstance(argument, Number) and name in _MATH_FUNCTIONS:
            return Number(_MATH_FUNCTIONS[name](argument.value))
        self = object.__new__(cls)
        object.__setattr__(self, "name", str(name))
        self._finalise((str(name), argument))
        return self

    @property
    def argument(self) -> Expr:
        return self._args[1]

    def children(self):
        return (self.argument,)

    def _rebuild_subs(self, mapping):
        return Call(self.name, self.argument._subs(mapping))

    def as_linear(self, target):
        if self.contains(target):
            raise NonLinearError(f"{target} occurs inside call {self.name}")
        return (S_ZERO, self)

    def evaluate(self, env, functions=None):
        arg = self.argument.evaluate(env, functions)
        table = functions or {}
        if self.name in table:
            return table[self.name](arg)
        import numpy as np

        return getattr(np, self.name)(arg)

    def __str__(self) -> str:
        return f"{self.name}({self.argument})"


class Indexed(Expr):
    """An access ``function[time_offset; dim offsets]`` into a grid function.

    ``offsets`` maps a dimension to an integer shift relative to the loop
    point; the time offset (for :class:`~repro.dsl.functions.TimeFunction`)
    lives under the function's stepping dimension.  Offsets are stored as a
    sorted tuple of ``(dimension_name, shift)`` so structurally equal accesses
    hash equal.
    """

    __slots__ = ("function", "offsets")

    def __new__(cls, function, offsets: Dict[Any, int] | Tuple[Tuple[str, int], ...]):
        if isinstance(offsets, dict):
            items = tuple(sorted((getattr(d, "name", str(d)), int(s)) for d, s in offsets.items()))
        else:
            items = tuple(sorted((str(d), int(s)) for d, s in offsets))
        items = tuple((d, s) for d, s in items if s != 0 or True)  # keep zeros: explicit
        self = object.__new__(cls)
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "offsets", items)
        self._finalise((function.name, items))
        return self

    def offset_map(self) -> Dict[str, int]:
        return dict(self.offsets)

    def shift(self, dim, amount: int) -> "Indexed":
        """Return a copy shifted by *amount* along *dim*."""
        name = getattr(dim, "name", str(dim))
        offs = self.offset_map()
        offs[name] = offs.get(name, 0) + int(amount)
        return Indexed(self.function, tuple(offs.items()))

    def evaluate(self, env, functions=None):
        try:
            return env[self]
        except KeyError:
            raise KeyError(f"no value bound for access {self}") from None

    def __str__(self) -> str:
        inner = ", ".join(
            f"{d}" if s == 0 else (f"{d}+{s}" if s > 0 else f"{d}-{-s}")
            for d, s in self.offsets
        )
        return f"{self.function.name}[{inner}]"


def sin(x) -> Expr:
    return Call("sin", x)


def cos(x) -> Expr:
    return Call("cos", x)


def tan(x) -> Expr:
    return Call("tan", x)


def sqrt(x) -> Expr:
    return Call("sqrt", x)


def exp(x) -> Expr:
    return Call("exp", x)
