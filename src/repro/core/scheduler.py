"""Schedule descriptions: how the space-time iteration space is traversed.

Three schedules, mirroring the paper's comparison:

* :class:`NaiveSchedule` — plain time-stepping, whole grid per timestep
  (Listing 1).
* :class:`SpatialBlockSchedule` — rectangular space blocking within each
  timestep (Fig. 4a); sparse operators run after each full sweep, so no
  dependence is ever violated.
* :class:`WavefrontSchedule` — wave-front temporal blocking (Fig. 4b /
  Listing 6): the time axis is cut into tiles of ``height`` steps; within a
  tile, skewed space-time windows of extent ``tile`` traverse the domain and
  every window executes all sweep instances of the tile at decreasing spatial
  offsets (the wavefront).  ``block`` is the intra-tile space-block shape
  (performance-model granularity; results are schedule-independent).

The same objects parameterise the NumPy executors (correctness), the memory
trace generator (cache simulation), and the analytical performance model, so
one description drives every measurement plane.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

__all__ = [
    "Schedule",
    "NaiveSchedule",
    "SpatialBlockSchedule",
    "WavefrontSchedule",
    "time_tiles",
    "tile_origins",
    "instance_lags",
    "lag_span",
]


class Schedule:
    """Base class; concrete schedules are plain frozen dataclasses."""

    kind = "abstract"

    def describe(self) -> dict:
        """JSON-able description of the schedule: its kind plus every
        geometry parameter.  Used as the legality-certificate key and in
        certificate serialisation (:mod:`repro.verify`)."""
        out = {"kind": self.kind}
        if dataclasses.is_dataclass(self):
            for f in dataclasses.fields(self):
                value = getattr(self, f.name)
                out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    def key(self) -> tuple:
        """Hashable form of :meth:`describe` (cache key)."""
        return tuple(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in sorted(self.describe().items())
        )


@dataclass(frozen=True)
class NaiveSchedule(Schedule):
    """Whole-grid time-stepping (the reference semantics)."""

    kind = "naive"


@dataclass(frozen=True)
class SpatialBlockSchedule(Schedule):
    """Rectangular spatial blocking over the outer (non-vectorised) dimensions.

    ``block`` gives the block extent along each blocked dimension (x, then y
    for 3-D grids); the innermost dimension streams unblocked, matching the
    paper's baseline (Devito's spatially-blocked vectorised code).
    """

    block: Tuple[int, ...] = (8, 8)
    kind = "spatial"

    def __post_init__(self):
        if not self.block or any(b < 1 for b in self.block):
            raise ValueError(f"invalid block shape {self.block}")


@dataclass(frozen=True)
class WavefrontSchedule(Schedule):
    """Wave-front temporal blocking (WTB).

    Parameters
    ----------
    tile:
        Space-tile extent along each skewed dimension (``tile_x, tile_y`` in
        Table I).
    block:
        Space-block extent within a tile (``block_x, block_y`` in Table I).
    height:
        Number of timesteps evaluated per space-time tile (the wavefront
        depth).  Must be >= 1; height 1 degenerates to spatial blocking.
    precompute_steps:
        When True (default) executors precompute the per-tile step list
        (instance lags, shifted windows, clipped boxes) once per distinct
        tile height and replay it for every congruent time tile.  False is
        an ablation knob that recomputes the geometry for every time tile,
        reproducing the cost structure of inline-geometry traversal.
    """

    tile: Tuple[int, ...] = (32, 32)
    block: Tuple[int, ...] = (8, 8)
    height: int = 4
    precompute_steps: bool = True
    kind = "wavefront"

    def __post_init__(self):
        if not self.tile or any(t < 1 for t in self.tile):
            raise ValueError(f"invalid tile shape {self.tile}")
        if len(self.block) != len(self.tile):
            raise ValueError("tile and block ranks must match")
        if any(b < 1 for b in self.block):
            raise ValueError(f"invalid block shape {self.block}")
        if self.height < 1:
            raise ValueError("wavefront height must be >= 1")


def time_tiles(time_m: int, time_M: int, height: int) -> Iterator[Tuple[int, int]]:
    """Half-open time tiles ``[t0, t1)`` covering ``[time_m, time_M)``."""
    if height < 1:
        raise ValueError("tile height must be >= 1")
    t0 = time_m
    while t0 < time_M:
        yield (t0, min(t0 + height, time_M))
        t0 += height


def instance_lags(radii: Tuple[int, ...], nsteps: int) -> List[int]:
    """Cumulative wavefront lag per sweep instance of an *nsteps*-high tile.

    ``radii[j]`` is sweep *j*'s read radius.  Instance order is
    ``(t0, s0), (t0, s1), ..., (t0+1, s0), ...``; the first instance has lag
    0 and each following instance adds its own sweep's read radius, which
    guarantees ``L[A] - L[B] >= radius(A)`` for any reader A of any earlier
    producer B (see :mod:`repro.ir.dependencies`).
    """
    if nsteps < 1:
        raise ValueError("tile height must be >= 1")
    if not radii:
        raise ValueError("need at least one sweep")
    lags: List[int] = []
    current = 0
    for _step in range(nsteps):
        for r in radii:
            if lags:
                current += int(r)
            lags.append(current)
    return lags


def lag_span(radii: Tuple[int, ...], j_from: int, count: int) -> int:
    """Lag accumulated over *count* instance advances after a sweep-*j_from*
    instance.

    Instances of a time tile are ordered ``(t0, s0), (t0, s1), ...,
    (t0+1, s0), ...`` and every instance after the first adds its own sweep's
    read radius to the cumulative lag (:func:`instance_lags`).  The lag gap
    between an instance of sweep *j_from* and the instance *count* positions
    later is therefore ``sum(radii[(j_from + m) % nsweeps] for m in
    1..count)`` — independent of which congruent pair is picked, which is what
    lets the legality prover check one inequality per dependence edge instead
    of one per instance pair (:mod:`repro.verify.prover`).
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    ns = len(radii)
    if ns == 0:
        raise ValueError("need at least one sweep")
    return sum(int(radii[(j_from + m) % ns]) for m in range(1, count + 1))


def tile_origins(extents: Tuple[int, ...], tile: Tuple[int, ...], max_lag: int) -> Iterator[Tuple[int, ...]]:
    """Origins of skewed space tiles covering ``[0, extent + max_lag)`` per dim.

    Tiles are yielded in lexicographic ascending order — the legal sequential
    order for skewed wavefront execution (all dependencies point to lower
    skewed coordinates).
    """
    ranges: List[List[int]] = [
        list(range(0, e + max_lag, t)) for e, t in zip(extents, tile)
    ]

    def rec(d: int, prefix: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
        if d == len(ranges):
            yield prefix
            return
        for o in ranges[d]:
            yield from rec(d + 1, prefix + (o,))

    yield from rec(0, ())
