"""Grid-aligned sparse-operator executors — step 4 of the scheme (Listing 4/5).

After decomposition, source injection is a per-grid-point addition and
receiver measurement a per-grid-point gather; both operate on arbitrary
sub-boxes, which is precisely what makes them legal inside space-time tiles.

:class:`AlignedInjection` applies ``u[t+k, p] += src_dcmp[t, SID[p]]`` for the
affected points *p* of a box, visiting only the compressed non-zero structure
(the executable analogue of the fused ``z2`` loop of Listing 5).

:class:`AlignedReceiver` gathers the wavefield at the affected points of a
box into a per-timestep staging vector and reconstructs the off-the-grid
receiver traces with a sparse weight matrix once a timestep's wavefield is
complete (at time-tile boundaries).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..dsl.functions import TimeFunction
from .decompose import DecomposedReceiver, DecomposedSource

__all__ = ["AlignedInjection", "AlignedReceiver"]

Box = Tuple[Tuple[int, int], ...]


class AlignedInjection:
    """Executable grid-aligned injection over boxes."""

    def __init__(self, dsrc: DecomposedSource, field: TimeFunction, receivers_nt: Optional[int] = None):
        if field.name != dsrc.field_name:
            raise ValueError(
                f"decomposition targets field {dsrc.field_name!r}, got {field.name!r}"
            )
        self.dsrc = dsrc
        self.field = field
        self.masks = dsrc.masks
        self.time_offset = dsrc.time_offset
        self.nt = dsrc.data.shape[0]
        pts = self.masks.points
        self._flat_idx = tuple(pts[:, d] + field.halo for d in range(pts.shape[1]))
        self._points = pts
        # convert the decomposed amplitudes to the field dtype once -- the hot
        # apply() path previously paid an astype per (t, box) instance
        self._amplitudes = np.ascontiguousarray(dsrc.data, dtype=field.dtype)

    def apply(self, t: int, box: Optional[Box] = None) -> None:
        """Add timestep *t*'s decomposed amplitudes into ``field[t + offset]``.

        With *box* given, only affected points inside the (half-open) box are
        injected — the form used inside space-time tiles.
        """
        if not 0 <= t < self.nt or self.masks.npts == 0:
            return
        if box is None:
            buf = self.field.buffer(t + self.time_offset)
            np.add.at(buf, self._flat_idx, self._amplitudes[t])
            return
        ids = self.masks.points_in_box(box)
        if ids.size == 0:  # the common case inside small tiles: nothing to do
            return
        buf = self.field.buffer(t + self.time_offset)
        idx = tuple(col[ids] for col in self._flat_idx)
        # each affected point appears exactly once: plain fancy add suffices
        buf[idx] += self._amplitudes[t][ids]

    def overhead_points(self) -> int:
        """Number of per-timestep extra updates the scheme performs."""
        return self.masks.npts


class AlignedReceiver:
    """Executable grid-aligned measurement over boxes.

    ``gather(t, box)`` stages field values of affected points in the box for
    timestep ``t + offset``; ``finalize(rows)`` reconstructs the receiver
    samples for completed timesteps and clears the staging storage.
    """

    def __init__(self, drec: DecomposedReceiver, field: TimeFunction, output: np.ndarray):
        if field.name != drec.field_name:
            raise ValueError(
                f"decomposition targets field {drec.field_name!r}, got {field.name!r}"
            )
        self.drec = drec
        self.field = field
        self.masks = drec.masks
        self.time_offset = drec.time_offset
        self.output = output  # (nt, npoint) receiver traces
        pts = self.masks.points
        self._flat_idx = tuple(pts[:, d] + field.halo for d in range(pts.shape[1]))
        self._staging: Dict[int, np.ndarray] = {}

    def _row(self, t: int) -> Optional[np.ndarray]:
        row = t + self.time_offset
        if not 0 <= row < self.output.shape[0]:
            return None
        if row not in self._staging:
            self._staging[row] = np.zeros(max(self.masks.npts, 1), dtype=np.float64)
        return self._staging[row]

    def gather(self, t: int, box: Optional[Box] = None) -> None:
        """Stage wavefield values at affected points (optionally box-local)."""
        if self.masks.npts == 0:
            return
        if box is not None:
            ids = self.masks.points_in_box(box)
            if ids.size == 0:  # nothing of this receiver in the tile
                return
        stage = self._row(t)
        if stage is None:
            return
        buf = self.field.buffer(t + self.time_offset)
        if box is None:
            stage[: self.masks.npts] = buf[self._flat_idx]
            return
        idx = tuple(col[ids] for col in self._flat_idx)
        stage[ids] = buf[idx]

    def finalize(self, t: int) -> None:
        """Reconstruct receiver samples for iteration *t* (wavefield complete)."""
        row = t + self.time_offset
        stage = self._staging.pop(row, None)
        if stage is None:
            if 0 <= row < self.output.shape[0] and self.masks.npts == 0:
                self.output[row] = 0.0
            return
        # reconstruction stays in float64 (weights/staging precision matters
        # for bit-identity with the raw off-grid path); the assignment below
        # performs the single cast to the trace dtype
        self.output[row] = self.drec.weights.dot(stage[: max(self.masks.npts, 1)])

    def pending_rows(self):
        return sorted(self._staging)
