"""Wavefield decomposition — step 3 of the scheme (Listing 3, Fig. 5d).

Each off-the-grid source's wavelet is scattered, through its interpolation
weights and the per-point scale factor (e.g. ``dt**2/m``), onto its affected
grid points, producing one *grid-aligned* time series per affected point::

    src_dcmp[t, SID[xs, ys, zs]] += w * scale(xs, ys, zs) * src[t, s]

After this, source injection is an affine, grid-aligned operation and no
longer blocks time-tiling.  The same machinery decomposes *receivers*
(measurement interpolation): a receiver's sample is a weighted sum of the
wavefield at its support points, so a per-affected-point gather plus a sparse
matrix-vector product reconstructs all receiver traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse as sp

from ..dsl.functions import Injection, Interpolation
from ..dsl.interpolation import support_points
from .masks import SourceMasks, build_masks

__all__ = ["DecomposedSource", "DecomposedReceiver", "decompose_source", "decompose_receiver"]


@dataclass
class DecomposedSource:
    """Grid-aligned source: masks + per-affected-point wavelets.

    ``data[t, i]`` is the full contribution (weights and scale folded in) to
    add to the field at affected point ``masks.points[i]`` when timestep
    ``t``'s injection fires.
    """

    masks: SourceMasks
    data: np.ndarray  # (nt, npts)
    time_offset: int
    field_name: str

    @property
    def npts(self) -> int:
        return self.masks.npts

    def memory_bytes(self) -> int:
        return int(self.data.nbytes) + self.masks.memory_bytes()


@dataclass
class DecomposedReceiver:
    """Grid-aligned receiver: masks + sparse (npoint x npts) weight matrix.

    Measuring timestep *t* is a two-stage affine operation: gather the field
    at the affected points (grid-aligned), then apply the weight matrix to
    reconstruct the off-the-grid receiver samples.
    """

    masks: SourceMasks
    weights: sp.csr_matrix  # (npoint, npts)
    time_offset: int
    field_name: str

    @property
    def npts(self) -> int:
        return self.masks.npts


def decompose_source(
    injection: Injection,
    dt: float,
    masks: Optional[SourceMasks] = None,
    method: str = "analytic",
) -> DecomposedSource:
    """Listing 3: decompose an off-the-grid injection to grid-aligned series."""
    from ..execution.sparse import evaluate_point_scale

    sparse_fn = injection.sparse
    grid = sparse_fn.grid
    if masks is None:
        masks = build_masks(sparse_fn, method=method)

    indices, weights = support_points(sparse_fn.coordinates, grid)
    npoint, ncorner, ndim = indices.shape
    flat_points = indices.reshape(-1, ndim)
    scale = evaluate_point_scale(injection.expr, flat_points, grid, dt)
    scaled_w = (weights.reshape(-1) * scale).reshape(npoint, ncorner)

    # corner -> affected-point id; corners with zero weight may be absent from
    # the mask (never affected), so route them to a dummy slot
    idx = tuple(flat_points[:, d] for d in range(ndim))
    corner_ids = masks.sid[idx].astype(np.int64)
    missing = corner_ids < 0
    if np.any(missing & (np.abs(scaled_w.reshape(-1)) > 0)):
        raise RuntimeError(
            "affected-point discovery missed a nonzero-weight support point"
        )

    nt = sparse_fn.nt
    npts = masks.npts
    cid = np.where(missing, npts, corner_ids).reshape(npoint, ncorner)
    # src_dcmp[t, id] += w * src[t, s] for every (source, corner); accumulate
    # through a sparse scatter matrix so memory stays O(nt*npts + npoint)
    src = np.asarray(sparse_fn.data, dtype=np.float64)  # (nt, npoint)
    rows = cid.reshape(-1)
    cols = np.repeat(np.arange(npoint), ncorner)
    vals = scaled_w.reshape(-1)
    scatter = sp.csr_matrix(
        (vals, (rows, cols)), shape=(npts + 1, npoint)
    )  # +1 dummy row absorbs zero-weight corners outside the mask
    data = scatter.dot(src.T).T  # (nt, npts+1)
    out = np.ascontiguousarray(data[:, :npts]).astype(grid.dtype)
    return DecomposedSource(
        masks=masks,
        data=out,
        time_offset=injection.time_offset,
        field_name=injection.field.name,
    )


def decompose_receiver(
    interpolation: Interpolation,
    masks: Optional[SourceMasks] = None,
    method: str = "analytic",
) -> DecomposedReceiver:
    """Grid-align a measurement interpolation (the receiver dual of Listing 3)."""
    sparse_fn = interpolation.sparse
    grid = sparse_fn.grid
    if masks is None:
        masks = build_masks(sparse_fn, method=method)

    indices, weights = support_points(sparse_fn.coordinates, grid)
    npoint, ncorner, ndim = indices.shape
    flat_points = indices.reshape(-1, ndim)
    idx = tuple(flat_points[:, d] for d in range(ndim))
    corner_ids = masks.sid[idx].astype(np.int64).reshape(npoint, ncorner)
    w = weights.copy()
    valid = corner_ids >= 0
    if np.any(~valid & (np.abs(w) > 0)):
        raise RuntimeError(
            "affected-point discovery missed a nonzero-weight support point"
        )
    w[~valid] = 0.0
    corner_ids[~valid] = 0

    rows = np.repeat(np.arange(npoint), ncorner)
    cols = corner_ids.reshape(-1)
    vals = w.reshape(-1)
    matrix = sp.csr_matrix(
        (vals, (rows, cols)), shape=(npoint, max(masks.npts, 1))
    )
    return DecomposedReceiver(
        masks=masks,
        weights=matrix,
        time_offset=interpolation.time_offset,
        field_name=interpolation.field.name,
    )
