"""The paper's contribution: precomputation of sparse off-the-grid operators
and wave-front temporal-blocking scheduling."""
from .aligned import AlignedInjection, AlignedReceiver
from .decompose import (
    DecomposedReceiver,
    DecomposedSource,
    decompose_receiver,
    decompose_source,
)
from .masks import SourceMasks, build_masks
from .pipeline import PipelineReport, TemporalBlockingPipeline
from .precompute import (
    affected_points,
    affected_points_analytic,
    affected_points_by_injection,
)
from .scheduler import (
    NaiveSchedule,
    Schedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
    instance_lags,
    tile_origins,
    time_tiles,
)

__all__ = [
    "affected_points",
    "affected_points_analytic",
    "affected_points_by_injection",
    "SourceMasks",
    "build_masks",
    "TemporalBlockingPipeline",
    "PipelineReport",
    "DecomposedSource",
    "DecomposedReceiver",
    "decompose_source",
    "decompose_receiver",
    "AlignedInjection",
    "AlignedReceiver",
    "Schedule",
    "NaiveSchedule",
    "SpatialBlockSchedule",
    "WavefrontSchedule",
    "time_tiles",
    "tile_origins",
    "instance_lags",
]
