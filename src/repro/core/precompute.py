"""Affected-point discovery — step 1 of the precomputation scheme (Listing 2).

Given a sparse off-the-grid point set, determine the set of grid points its
injection touches.  Two interchangeable methods are provided:

``by_injection``
    The paper's method: inject onto an *empty* scratch grid for the first few
    timesteps (assuming a non-zero wavelet there, as the paper's experiments
    do) and record the non-zero indices.  This works for any injection
    operator without knowing its internals.

``analytic``
    Directly enumerate the multilinear support of each point and drop
    zero-weight corners.  Faster, and used to cross-validate ``by_injection``.

Both return the affected points in the same canonical (lexicographic) order
so downstream ID assignment is deterministic.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..dsl.functions import SparseTimeFunction
from ..dsl.grid import Grid
from ..dsl.interpolation import support_points

__all__ = ["affected_points", "affected_points_analytic", "affected_points_by_injection"]

#: weights whose magnitude is below this never influence a single-precision
#: field and are treated as "not affected"
WEIGHT_TOL = 0.0


def _canonical_order(points: np.ndarray) -> np.ndarray:
    """Sort integer points lexicographically and drop duplicates."""
    if points.size == 0:
        return points.reshape(0, points.shape[-1] if points.ndim > 1 else 1)
    return np.unique(points, axis=0)


def affected_points_analytic(sparse: SparseTimeFunction) -> np.ndarray:
    """Unique grid points in the support of *sparse*, zero-weight corners dropped."""
    indices, weights = support_points(sparse.coordinates, sparse.grid)
    mask = np.abs(weights) > WEIGHT_TOL
    pts = indices[mask]
    return _canonical_order(pts)


def affected_points_by_injection(
    sparse: SparseTimeFunction, nprobe: int = 2
) -> np.ndarray:
    """Paper's Listing 2: probe-inject onto an empty grid, read off non-zeros.

    Injects the first ``nprobe`` wavelet samples (falling back to unit
    amplitudes when the wavelet opens with zeros, so the probe cannot miss a
    point) onto a zeroed scratch array of the grid's shape, then returns the
    indices where the scratch is non-zero.
    """
    grid = sparse.grid
    scratch = np.zeros(grid.shape, dtype=np.float64)
    indices, weights = support_points(sparse.coordinates, grid)
    npoint, ncorner, ndim = indices.shape
    flat_idx = tuple(indices[..., d].ravel() for d in range(ndim))
    for t in range(min(nprobe, sparse.nt)):
        amp = np.asarray(sparse.data[t], dtype=np.float64)
        if not np.any(amp):
            amp = np.ones(npoint)
        # accumulate |w * amp| so probes of opposite sign cannot cancel
        contributions = np.abs(weights * amp[:, None])
        np.add.at(scratch, flat_idx, contributions.ravel())
    pts = np.argwhere(scratch != 0.0)
    return _canonical_order(pts)


def affected_points(sparse: SparseTimeFunction, method: str = "analytic") -> np.ndarray:
    """Dispatch on discovery *method* ("analytic" or "by_injection")."""
    if method == "analytic":
        return affected_points_analytic(sparse)
    if method == "by_injection":
        return affected_points_by_injection(sparse)
    raise ValueError(f"unknown affected-point discovery method {method!r}")
