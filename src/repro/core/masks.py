"""Sparse-operator mask structures — steps 2 and 5 of the scheme (Fig. 5/6).

From the affected-point set we build:

* ``sm``  — the binary **source mask**, 1 at affected grid points (Fig. 5b);
* ``sid`` — the **source-ID** map assigning each affected point a unique
  ascending id ``0..npts-1`` in canonical order (Fig. 5c); unaffected points
  hold the sentinel ``-1``;
* ``nnz`` / ``sp_sid`` — the compressed iteration structures of Listing 5 /
  Fig. 6: for each ``(x, y)`` pencil, ``nnz[x, y]`` counts the affected ``z``
  positions and ``sp_sid[x, y, k]`` (k < nnz) stores them, so the fused
  injection loop visits only affected slots instead of scanning all of ``z``.

3-D is the primary layout (compression along ``z``); 1-D/2-D grids compress
along their innermost dimension for the same effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..dsl.functions import SparseTimeFunction
from ..dsl.grid import Grid
from .precompute import affected_points

__all__ = ["SourceMasks", "build_masks"]


@dataclass
class SourceMasks:
    """The grid-aligned sparse-operator data structures of §II-A."""

    grid: Grid
    #: unique affected grid points, canonical (lexicographic) order, (npts, ndim)
    points: np.ndarray
    #: binary mask over the full grid, uint8
    sm: np.ndarray
    #: unique id per affected point; -1 elsewhere; int32
    sid: np.ndarray
    #: per-pencil count of affected innermost positions, int32, shape grid.shape[:-1]
    nnz: np.ndarray
    #: compacted innermost indices, int32, shape grid.shape[:-1] + (max_nnz,)
    sp_sid: np.ndarray
    #: leading-dim bucket index: ``_starts[x] .. _starts[x+1]`` is the id range
    #: of points with leading coordinate ``x`` (built lazily; points are in
    #: canonical lexicographic order so ids within a slab are contiguous)
    _starts: Optional[np.ndarray] = field(default=None, init=False, repr=False, compare=False)
    #: memoised per-box id lookups (box geometry repeats across time tiles)
    _box_cache: Dict[Tuple, np.ndarray] = field(default_factory=dict, init=False, repr=False, compare=False)
    #: instrumentation: queries served and candidate points actually scanned
    #: (versus ``queries * npts`` for the brute-force scan); cache hits listed
    #: separately so op-count tests can reason about cold lookups
    stats: Dict[str, int] = field(default_factory=lambda: {"queries": 0, "scanned": 0, "cache_hits": 0}, init=False, repr=False, compare=False)
    #: ablation knob: False routes :meth:`points_in_box` through the
    #: unmemoised brute-force scan — the seed's lookup path, kept for A/B
    #: benchmarks and the randomized equivalence test
    indexed: bool = field(default=True, init=False, repr=False, compare=False)

    @property
    def npts(self) -> int:
        return int(self.points.shape[0])

    @property
    def max_nnz(self) -> int:
        return int(self.sp_sid.shape[-1])

    def id_of(self, points: np.ndarray) -> np.ndarray:
        """Look up ids for integer grid points, shape (n, ndim) -> (n,)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.int64))
        idx = tuple(points[:, d] for d in range(points.shape[1]))
        ids = self.sid[idx]
        if np.any(ids < 0):
            raise KeyError("some queried points are not affected points")
        return ids

    def density(self) -> float:
        """Fraction of grid points affected — drives the Fig. 10 corner cases."""
        return self.npts / float(self.grid.npoints)

    def pencil_occupancy(self) -> float:
        """Fraction of innermost pencils containing at least one affected point.

        This is what the Listing-5 compression exploits: the fused ``z2`` loop
        body is skipped entirely for the ``1 - occupancy`` empty pencils.
        """
        return float(np.count_nonzero(self.nnz)) / float(self.nnz.size)

    def memory_bytes(self) -> int:
        """Footprint of the auxiliary structures (scheme overhead accounting)."""
        return int(
            self.sm.nbytes + self.sid.nbytes + self.nnz.nbytes + self.sp_sid.nbytes
        )

    # -- box queries used by the blocked executors --------------------------------
    def _leading_starts(self) -> np.ndarray:
        """Bucket boundaries of the leading coordinate (lazy, O(npts log n))."""
        if self._starts is None:
            lead = self.points[:, 0] if self.npts else np.empty(0, dtype=np.int64)
            # canonical order makes `lead` non-decreasing; guaranteed by
            # build_masks, asserted cheaply here so a future regression cannot
            # silently return wrong ids
            if lead.size and np.any(np.diff(lead) < 0):
                raise AssertionError("SourceMasks.points lost canonical order")
            n0 = int(self.grid.shape[0])
            self._starts = np.searchsorted(lead, np.arange(n0 + 1))
        return self._starts

    def points_in_box(self, box: Tuple[Tuple[int, int], ...]) -> np.ndarray:
        """Ids of affected points inside a half-open box ``((lo, hi), ...)``.

        Uses the bucketed leading-dimension index: two ``searchsorted``
        lookups select the candidate slab, and only those candidates are
        filtered on the trailing dimensions — O(candidates), not O(npts),
        per query (the executable analogue of the Listing-5 compression).
        Results are memoised per box; tile geometry repeats every time tile.
        """
        if self.indexed:
            # probe with the raw box first: int-valued tuples hash equal to
            # their canonical form, so repeated hot-loop queries skip the
            # per-element int() conversion below entirely
            hit = self._box_cache.get(box)
            if hit is not None:
                self.stats["queries"] += 1
                self.stats["cache_hits"] += 1
                return hit
        box = tuple((int(lo), int(hi)) for lo, hi in box)
        self.stats["queries"] += 1
        if not self.indexed:  # seed-path ablation: O(npts) scan, no memo
            self.stats["scanned"] += self.npts
            return self._points_in_box_scan(box)
        hit = self._box_cache.get(box)
        if hit is not None:
            self.stats["cache_hits"] += 1
            return hit
        starts = self._leading_starts()
        n0 = int(self.grid.shape[0])
        lo0 = min(max(box[0][0], 0), n0)
        hi0 = min(max(box[0][1], lo0), n0)
        a, b = int(starts[lo0]), int(starts[hi0])
        self.stats["scanned"] += b - a
        sel = np.ones(b - a, dtype=bool)
        for d, (lo, hi) in enumerate(box[1:], start=1):
            col = self.points[a:b, d]
            sel &= (col >= lo) & (col < hi)
        ids = a + np.flatnonzero(sel)
        if len(self._box_cache) >= 4096:  # safety valve
            self._box_cache.clear()
        self._box_cache[box] = ids
        return ids

    def _points_in_box_scan(self, box: Tuple[Tuple[int, int], ...]) -> np.ndarray:
        """Brute-force boolean scan over all points (reference for tests)."""
        sel = np.ones(self.npts, dtype=bool)
        for d, (lo, hi) in enumerate(box):
            sel &= (self.points[:, d] >= lo) & (self.points[:, d] < hi)
        return np.flatnonzero(sel)


def build_masks(sparse: SparseTimeFunction, method: str = "analytic") -> SourceMasks:
    """Build all mask structures for a sparse point set (Fig. 5b/5c + Fig. 6)."""
    grid = sparse.grid
    points = affected_points(sparse, method=method)
    npts = points.shape[0]

    sm = np.zeros(grid.shape, dtype=np.uint8)
    sid = np.full(grid.shape, -1, dtype=np.int32)
    if npts:
        idx = tuple(points[:, d] for d in range(grid.ndim))
        sm[idx] = 1
        sid[idx] = np.arange(npts, dtype=np.int32)

    # compress along the innermost dimension (z for 3-D grids)
    nnz = np.count_nonzero(sm, axis=-1).astype(np.int32)
    max_nnz = int(nnz.max()) if nnz.size else 0
    pencil_shape = grid.shape[:-1]
    sp_sid = np.full(pencil_shape + (max(max_nnz, 1),), -1, dtype=np.int32)
    if npts:
        # vectorised CSR-style fill: rank affected z's within each pencil
        mask_flat = sm.reshape(-1, grid.shape[-1]).astype(bool)
        rows, zs = np.nonzero(mask_flat)
        # position of each nonzero within its row
        slot = np.zeros_like(rows)
        if rows.size:
            first = np.ones(rows.size, dtype=bool)
            first[1:] = rows[1:] != rows[:-1]
            starts = np.flatnonzero(first)
            counts_idx = np.arange(rows.size)
            slot = counts_idx - np.repeat(counts_idx[starts], np.diff(np.append(starts, rows.size)))
        sp_flat = sp_sid.reshape(-1, sp_sid.shape[-1])
        sp_flat[rows, slot] = zs.astype(np.int32)

    return SourceMasks(grid=grid, points=points, sm=sm, sid=sid, nnz=nnz, sp_sid=sp_sid)
