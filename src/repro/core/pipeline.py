"""End-to-end precomputation pipeline — §II as an explicit, inspectable object.

:class:`Operator` runs the same machinery implicitly when handed a
:class:`~repro.core.scheduler.WavefrontSchedule`; this class exposes the
individual steps (discover → masks → decompose → schedule) with their
intermediate artefacts and cost accounting, for users who want to inspect or
reuse them (e.g. amortising one decomposition across many shots) and for the
overhead reporting the paper's §IV-E relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..dsl.functions import Injection, Interpolation
from .decompose import (
    DecomposedReceiver,
    DecomposedSource,
    decompose_receiver,
    decompose_source,
)
from .masks import SourceMasks, build_masks
from .scheduler import WavefrontSchedule, instance_lags

__all__ = ["TemporalBlockingPipeline", "PipelineReport"]


@dataclass
class PipelineReport:
    """Cost/shape summary of one precomputation run."""

    nsources: int
    nreceivers: int
    affected_points: int
    density: float
    pencil_occupancy: float
    aux_bytes: int
    wavefront_angle: int
    sweep_radii: List[int]
    lags_example: List[int] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            "temporal-blocking precomputation report",
            f"  sparse operators : {self.nsources} injection(s), {self.nreceivers} interpolation(s)",
            f"  affected points  : {self.affected_points} "
            f"({self.density:.3%} of the grid, {self.pencil_occupancy:.3%} of pencils)",
            f"  auxiliary memory : {self.aux_bytes} bytes (SM + SID + nnz + Sp_SID + src_dcmp)",
            f"  wavefront angle  : {self.wavefront_angle} per timestep "
            f"(sweep radii {self.sweep_radii})",
        ]
        if self.lags_example:
            lines.append(f"  instance lags    : {self.lags_example} (one height-4 tile)")
        return "\n".join(lines)


class TemporalBlockingPipeline:
    """Run the paper's §II steps explicitly over an operator's sparse ops.

    Usage::

        pipe = TemporalBlockingPipeline(op, dt=2.0)
        pipe.precompute()                        # Listings 2-3, Figs. 5-6
        print(pipe.report().render())
        pipe.run(time_M=nt, schedule=WavefrontSchedule(tile=(32, 32)))
    """

    def __init__(self, operator, dt: float, model=None, kind: str = "acoustic"):
        self.operator = operator
        self.dt = float(dt)
        self.model = model
        self.kind = kind
        self.masks: Dict[str, SourceMasks] = {}
        self.sources: Dict[int, DecomposedSource] = {}
        self.receivers: Dict[int, DecomposedReceiver] = {}
        self._done = False

    # -- pre-flight ----------------------------------------------------------------
    def preflight(self, cfl_policy: str = "raise") -> "TemporalBlockingPipeline":
        """Validate inputs before any precomputation or timestepping.

        Checks, in order: the CFL condition of :attr:`dt` against the model's
        critical timestep (only when a *model* was given; policy ``"raise"``
        or ``"warn"``), every sparse operator's coordinates against the
        physical domain, and — after :meth:`precompute` — the structural
        consistency of the masks and decomposed wavelets.  Raises the
        structured errors of :mod:`repro.errors`.
        """
        from ..runtime.preflight import check_cfl, check_coordinates, check_masks

        if self.model is not None:
            check_cfl(self.dt, self.model, kind=self.kind, policy=cfl_policy)
        seen = set()
        for sp_op in (*self.operator.injections(), *self.operator.interpolations()):
            if id(sp_op.sparse) not in seen:
                seen.add(id(sp_op.sparse))
                check_coordinates(sp_op.sparse)
        if self._done:
            for masks in self.masks.values():
                check_masks(masks)
        return self

    # -- the steps -----------------------------------------------------------------
    def precompute(
        self, method: str = "analytic", telemetry=None
    ) -> "TemporalBlockingPipeline":
        """Steps 1-3: affected points, masks, wavelet decomposition.

        Runs :meth:`preflight` first (geometry + CFL when a model is
        attached), then once more after building the sparse structures so a
        corrupted mask never reaches the executors.  With *telemetry* given,
        the whole precomputation is recorded as a ``pipeline.precompute``
        span (sub-spans per decomposition step) accumulated into the
        ``precompute`` phase.
        """
        pspan = None
        if telemetry is not None:
            pspan = telemetry.begin(
                "pipeline.precompute", phase="precompute", method=method
            )
        self.preflight()
        for inj in self.operator.injections():
            if telemetry is not None:
                with telemetry.span(
                    "decompose.source", phase="precompute", sparse=inj.sparse.name
                ):
                    masks = self._masks_for(inj.sparse, method)
                    self.sources[id(inj)] = decompose_source(inj, self.dt, masks=masks)
            else:
                masks = self._masks_for(inj.sparse, method)
                self.sources[id(inj)] = decompose_source(inj, self.dt, masks=masks)
        for itp in self.operator.interpolations():
            if telemetry is not None:
                with telemetry.span(
                    "decompose.receiver", phase="precompute", sparse=itp.sparse.name
                ):
                    masks = self._masks_for(itp.sparse, method)
                    self.receivers[id(itp)] = decompose_receiver(itp, masks=masks)
            else:
                masks = self._masks_for(itp.sparse, method)
                self.receivers[id(itp)] = decompose_receiver(itp, masks=masks)
        self._done = True
        from ..runtime.preflight import check_masks

        for masks in self.masks.values():
            check_masks(masks)
        # prime the operator's caches so apply() reuses this work
        for inj in self.operator.injections():
            self.operator._decomp_cache[(id(inj), self.dt)] = self.sources[id(inj)]
        for itp in self.operator.interpolations():
            self.operator._decomp_cache[(id(itp), 0.0)] = self.receivers[id(itp)]
        if pspan is not None:
            telemetry.end(pspan)
            telemetry.add_phase("precompute", pspan.dur)
        return self

    def _masks_for(self, sparse_fn, method: str) -> SourceMasks:
        key = sparse_fn.name
        if key not in self.masks:
            self.masks[key] = build_masks(sparse_fn, method=method)
            self.operator._mask_cache[id(sparse_fn)] = self.masks[key]
        return self.masks[key]

    # -- accounting ---------------------------------------------------------------------
    def report(self, example_height: int = 4) -> PipelineReport:
        if not self._done:
            raise RuntimeError("call precompute() first")
        npts = 0
        density = 0.0
        occupancy = 0.0
        aux = 0
        if self.masks:
            all_masks = list(self.masks.values())
            npts = sum(m.npts for m in all_masks)
            density = float(np.mean([m.density() for m in all_masks]))
            occupancy = float(np.mean([m.pencil_occupancy() for m in all_masks]))
            aux = sum(m.memory_bytes() for m in all_masks)
        aux += sum(int(d.data.nbytes) for d in self.sources.values())
        radii = self.operator.sweep_radii
        return PipelineReport(
            nsources=len(self.sources),
            nreceivers=len(self.receivers),
            affected_points=npts,
            density=density,
            pencil_occupancy=occupancy,
            aux_bytes=aux,
            wavefront_angle=self.operator.wavefront_angle,
            sweep_radii=radii,
            lags_example=instance_lags(tuple(radii), example_height) if radii else [],
        )

    # -- execution ---------------------------------------------------------------------
    def run(
        self,
        time_M: int,
        schedule: Optional[WavefrontSchedule] = None,
        time_m: int = 0,
        health=None,
        checkpoint=None,
        faults=None,
        telemetry=None,
    ):
        """Step 4-6: run the time-tiled, fused schedule using the precomputed
        structures (cached on the operator).  ``health``/``checkpoint``/
        ``faults`` attach the runtime resilience layer (:mod:`repro.runtime`);
        ``telemetry`` the tracing/counter layer (:mod:`repro.telemetry`)."""
        if not self._done:
            self.precompute(telemetry=telemetry)
        schedule = schedule or WavefrontSchedule()
        return self.operator.apply(
            time_M=time_M, time_m=time_m, dt=self.dt,
            schedule=schedule, sparse_mode="precomputed",
            health=health, checkpoint=checkpoint, faults=faults,
            telemetry=telemetry,
        )
