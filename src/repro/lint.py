"""Command-line front-end of the kernel-IR linter and schedule prover.

Usage::

    python -m repro.lint acoustic          # lint one example operator
    python -m repro.lint --all             # acoustic + tti + elastic
    python -m repro.lint --all --json      # machine-readable output (CI)

Each example is the corresponding paper propagator on a small grid with one
off-the-grid Ricker source and a receiver line — the same operators the
benchmarks scale up.  The exit code is 1 iff any linted operator has an
error-severity finding (warnings alone exit 0), so CI can gate on it.

Besides linting, every example is run through the schedule-legality prover
(:func:`repro.verify.prove_schedule`) under the same schedule set the profile
CLI sweeps (``SCHEDULES`` — naive, spatial, wavefront; the prover result is
trivial for the untiled kinds but recorded so the JSON is uniform) and the
certificate summaries are printed — a certificate failure is a finding too.

The ``--json`` output is schema-stable: a versioned envelope with sorted
keys, suitable for committed baselines (see ``python -m repro.verify``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .core.scheduler import (
    NaiveSchedule,
    SpatialBlockSchedule,
    WavefrontSchedule,
)
from .errors import ScheduleLegalityError
from .verify import lint_operator, prove_schedule

EXAMPLES = ("acoustic", "tti", "elastic")

#: the schedule sweep shared by the lint/verify/profile CLIs — one source of
#: truth so static verification covers exactly the schedules profiled
SCHEDULES = ("naive", "spatial", "wavefront")

#: JSON envelope version of ``--json`` output (bump on schema changes)
JSON_SCHEMA_VERSION = 1


def make_schedule(kind: str):
    """The concrete schedule each CLI kind maps to (shared with profile)."""
    if kind == "naive":
        return NaiveSchedule()
    if kind == "spatial":
        return SpatialBlockSchedule(block=(6, 6))
    if kind == "wavefront":
        return WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2)
    raise ValueError(f"unknown schedule kind {kind!r}; expected one of {SCHEDULES}")


def build_example(kind: str, nt: int = 16):
    """A small (12^3, nbl=2, so=4) propagator with source + receivers."""
    import numpy as np

    from .propagators import (
        AcousticPropagator,
        ElasticPropagator,
        SeismicModel,
        TTIPropagator,
        layered_velocity,
        point_source,
        receiver_line,
    )

    shape, nbl, so = (12, 12, 12), 2, 4
    vp = layered_velocity(shape, 1.5, 3.0, 3)
    kwargs = {}
    if kind == "tti":
        kwargs = dict(epsilon=0.12, delta=0.05, theta=0.35, phi=0.4)
    elif kind == "elastic":
        kwargs = dict(rho=1.8, vs=vp / 1.8)
    elif kind != "acoustic":
        raise ValueError(f"unknown example {kind!r}; expected one of {EXAMPLES}")
    spacing = 20.0 if kind == "tti" else 10.0
    model = SeismicModel(shape, (spacing,) * 3, vp, nbl=nbl, space_order=so, **kwargs)
    cls = {
        "acoustic": AcousticPropagator,
        "tti": TTIPropagator,
        "elastic": ElasticPropagator,
    }[kind]
    dt = model.critical_dt(kind)
    center = model.domain_center
    src = point_source("src", model.grid, nt, np.asarray(center), f0=0.015, dt=dt)
    rec = receiver_line("rec", model.grid, nt, npoint=4, depth=center[-1])
    prop = cls(model, space_order=so, source=src, receivers=rec)
    return prop, dt


def lint_example(kind: str, dt: float = None):
    prop, crit_dt = build_example(kind)
    return lint_operator(prop.op, dt=dt if dt is not None else crit_dt), prop, crit_dt


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically verify the paper's example operators.",
    )
    parser.add_argument(
        "example",
        nargs="?",
        choices=EXAMPLES,
        help="which example operator to lint (omit with --all)",
    )
    parser.add_argument("--all", action="store_true", help="lint every example")
    parser.add_argument("--json", action="store_true", help="JSON output (CI)")
    parser.add_argument(
        "--no-prove", action="store_true", help="skip the schedule-legality prover"
    )
    args = parser.parse_args(argv)
    if not args.all and args.example is None:
        parser.error("give an example name or --all")
    kinds = EXAMPLES if args.all else (args.example,)

    results = []
    failed = False
    for kind in kinds:
        report, prop, dt = lint_example(kind)
        entry = report.to_dict()
        if not report.ok:
            failed = True
        if not args.no_prove:
            entry["certificates"] = {}
            for sched_kind in SCHEDULES:
                schedule = make_schedule(sched_kind)
                try:
                    cert = prove_schedule(prop.op, schedule)
                    entry["certificates"][sched_kind] = cert.to_dict()
                    if not cert.check():
                        failed = True
                except ScheduleLegalityError as exc:
                    failed = True
                    entry["certificates"][sched_kind] = {
                        "legal": False,
                        "error": str(exc),
                    }
            # keep the wavefront certificate at the legacy key too
            entry["certificate"] = entry["certificates"]["wavefront"]
        results.append((kind, report, entry))

    if args.json:
        envelope = {
            "version": JSON_SCHEMA_VERSION,
            "tool": "repro.lint",
            "schedules": list(SCHEDULES),
            "results": {k: e for k, _, e in results},
        }
        print(json.dumps(envelope, indent=2, sort_keys=True))
    else:
        for kind, report, entry in results:
            print(report.render())
            for sched_kind, cert in entry.get("certificates", {}).items():
                if cert.get("legal"):
                    skew = cert["tile_skew"]
                    dist = cert["max_distance"]
                    print(
                        f"  certificate[{sched_kind}]: legal "
                        f"(angle={cert['wavefront_angle']}, skew={skew}, "
                        f"edges={len(cert['dependences'])}, "
                        f"max_distance={dist})"
                    )
                else:
                    print(
                        f"  certificate[{sched_kind}]: ILLEGAL — "
                        f"{cert.get('error', 'violated')}"
                    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
