"""Command-line front-end of the kernel-IR linter and schedule prover.

Usage::

    python -m repro.lint acoustic          # lint one example operator
    python -m repro.lint --all             # acoustic + tti + elastic
    python -m repro.lint --all --json      # machine-readable output (CI)

Each example is the corresponding paper propagator on a small grid with one
off-the-grid Ricker source and a receiver line — the same operators the
benchmarks scale up.  The exit code is 1 iff any linted operator has an
error-severity finding (warnings alone exit 0), so CI can gate on it.

Besides linting, every example is run through the schedule-legality prover
(:func:`repro.verify.prove_schedule`) under a wavefront schedule and the
certificate summary is printed — a certificate failure is a finding too.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .core.scheduler import WavefrontSchedule
from .errors import ScheduleLegalityError
from .verify import lint_operator, prove_schedule

EXAMPLES = ("acoustic", "tti", "elastic")


def build_example(kind: str, nt: int = 16):
    """A small (12^3, nbl=2, so=4) propagator with source + receivers."""
    import numpy as np

    from .propagators import (
        AcousticPropagator,
        ElasticPropagator,
        SeismicModel,
        TTIPropagator,
        layered_velocity,
        point_source,
        receiver_line,
    )

    shape, nbl, so = (12, 12, 12), 2, 4
    vp = layered_velocity(shape, 1.5, 3.0, 3)
    kwargs = {}
    if kind == "tti":
        kwargs = dict(epsilon=0.12, delta=0.05, theta=0.35, phi=0.4)
    elif kind == "elastic":
        kwargs = dict(rho=1.8, vs=vp / 1.8)
    elif kind != "acoustic":
        raise ValueError(f"unknown example {kind!r}; expected one of {EXAMPLES}")
    spacing = 20.0 if kind == "tti" else 10.0
    model = SeismicModel(shape, (spacing,) * 3, vp, nbl=nbl, space_order=so, **kwargs)
    cls = {
        "acoustic": AcousticPropagator,
        "tti": TTIPropagator,
        "elastic": ElasticPropagator,
    }[kind]
    dt = model.critical_dt(kind)
    center = model.domain_center
    src = point_source("src", model.grid, nt, np.asarray(center), f0=0.015, dt=dt)
    rec = receiver_line("rec", model.grid, nt, npoint=4, depth=center[-1])
    prop = cls(model, space_order=so, source=src, receivers=rec)
    return prop, dt


def lint_example(kind: str, dt: float = None):
    prop, crit_dt = build_example(kind)
    return lint_operator(prop.op, dt=dt if dt is not None else crit_dt), prop, crit_dt


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically verify the paper's example operators.",
    )
    parser.add_argument(
        "example",
        nargs="?",
        choices=EXAMPLES,
        help="which example operator to lint (omit with --all)",
    )
    parser.add_argument("--all", action="store_true", help="lint every example")
    parser.add_argument("--json", action="store_true", help="JSON output (CI)")
    parser.add_argument(
        "--no-prove", action="store_true", help="skip the schedule-legality prover"
    )
    args = parser.parse_args(argv)
    if not args.all and args.example is None:
        parser.error("give an example name or --all")
    kinds = EXAMPLES if args.all else (args.example,)

    results = []
    failed = False
    for kind in kinds:
        report, prop, dt = lint_example(kind)
        entry = report.to_dict()
        if not report.ok:
            failed = True
        if not args.no_prove:
            schedule = WavefrontSchedule(tile=(8, 8), block=(4, 4), height=2)
            try:
                cert = prove_schedule(prop.op, schedule)
                entry["certificate"] = cert.to_dict()
                if not cert.check():
                    failed = True
            except ScheduleLegalityError as exc:
                failed = True
                entry["certificate"] = {"legal": False, "error": str(exc)}
        results.append((kind, report, entry))

    if args.json:
        print(json.dumps({k: e for k, _, e in results}, indent=2))
    else:
        for kind, report, entry in results:
            print(report.render())
            cert = entry.get("certificate")
            if cert is not None:
                if cert.get("legal"):
                    skew = cert["tile_skew"]
                    dist = cert["max_distance"]
                    print(
                        f"  certificate: legal under wavefront "
                        f"(angle={cert['wavefront_angle']}, skew={skew}, "
                        f"edges={len(cert['dependences'])}, "
                        f"max_distance={dist})"
                    )
                else:
                    print(f"  certificate: ILLEGAL — {cert.get('error', 'violated')}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
