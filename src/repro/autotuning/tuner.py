"""Autotuner for temporally blocked schedules — §IV-C / Table I.

Sweeps the (tile_x, tile_y, block_x, block_y, height) space of
:class:`WavefrontSchedule` against the performance model and returns the
best-throughput configuration, exactly as the paper "swept over the whole
parameter space to find the global performance maxima".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.scheduler import SpatialBlockSchedule, WavefrontSchedule
from ..machine.perfmodel import PerfResult, PerformanceModel

__all__ = ["TuneCandidate", "TuneResult", "tune_wavefront", "tune_spatial", "DEFAULT_TILES", "DEFAULT_BLOCKS"]

DEFAULT_TILES: Tuple[int, ...] = (16, 32, 48, 64, 96, 128, 256)
DEFAULT_BLOCKS: Tuple[int, ...] = (4, 8, 12, 16)
DEFAULT_HEIGHTS: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


@dataclass(frozen=True)
class TuneCandidate:
    schedule: WavefrontSchedule
    gpoints_s: float
    bound: str
    feasible: bool


@dataclass
class TuneResult:
    best: TuneCandidate
    candidates: List[TuneCandidate] = field(default_factory=list)

    @property
    def schedule(self) -> WavefrontSchedule:
        return self.best.schedule

    def top(self, n: int = 5) -> List[TuneCandidate]:
        return sorted(self.candidates, key=lambda c: -c.gpoints_s)[:n]


def _better(cand: TuneCandidate, best: TuneCandidate) -> bool:
    """Strictly faster wins; ties (within 0.2%) go to the *larger* tile.

    Near space order 12 temporal reuse buys nothing and many configurations
    model identically; real autotuning (Table I) lands on the largest tiles
    there (256x256) because bigger tiles amortise loop overheads the
    first-order model does not see.
    """
    if cand.gpoints_s > best.gpoints_s * 1.002:
        return True
    if cand.gpoints_s < best.gpoints_s * 0.998:
        return False
    area = cand.schedule.tile[0] * cand.schedule.tile[1]
    best_area = best.schedule.tile[0] * best.schedule.tile[1]
    return area > best_area


def tune_wavefront(
    model: PerformanceModel,
    tiles: Sequence[int] = DEFAULT_TILES,
    blocks: Sequence[int] = DEFAULT_BLOCKS,
    heights: Optional[Sequence[int]] = None,
    square_tiles_only: bool = False,
) -> TuneResult:
    """Exhaustive sweep; infeasible tiles are evaluated (and penalised) too,
    mirroring the paper's empirical search."""
    heights = tuple(heights) if heights is not None else DEFAULT_HEIGHTS
    candidates: List[TuneCandidate] = []
    best: Optional[TuneCandidate] = None
    for tx in tiles:
        ty_options = (tx,) if square_tiles_only else tiles
        for ty in ty_options:
            feasible_seen = False
            for h in heights:
                for bx in blocks:
                    for by in blocks:
                        if bx > tx or by > ty:
                            continue
                        sched = WavefrontSchedule(tile=(tx, ty), block=(bx, by), height=h)
                        res = model.evaluate(sched)
                        cand = TuneCandidate(
                            schedule=sched,
                            gpoints_s=res.gpoints_s,
                            bound=res.bound,
                            feasible=res.feasible,
                        )
                        candidates.append(cand)
                        if best is None or _better(cand, best):
                            best = cand
                        feasible_seen = feasible_seen or res.feasible
                if not feasible_seen and h > min(heights):
                    break  # taller tiles only grow the working set
    assert best is not None
    return TuneResult(best=best, candidates=candidates)


def tune_spatial(
    model: PerformanceModel,
    blocks: Sequence[int] = DEFAULT_BLOCKS,
) -> SpatialBlockSchedule:
    """Pick the best spatially-blocked baseline (fair comparison, §IV-C:
    the paper compares against Devito's *aggressively tuned* spatial code,
    so the baseline search must be as thorough as the wavefront one)."""
    best = None
    best_t = float("inf")
    for bx in blocks:
        for by in blocks:
            sched = SpatialBlockSchedule(block=(bx, by))
            t = model.evaluate(sched).time_s
            if t < best_t:
                best, best_t = sched, t
    assert best is not None
    return best
