"""Autotuning of blocked schedules (Table I)."""
from .tuner import (
    DEFAULT_BLOCKS,
    DEFAULT_TILES,
    TuneCandidate,
    TuneResult,
    tune_spatial,
    tune_wavefront,
)

__all__ = [
    "tune_wavefront",
    "tune_spatial",
    "TuneResult",
    "TuneCandidate",
    "DEFAULT_TILES",
    "DEFAULT_BLOCKS",
]
